//! MultiQueue configuration.

pub use rank_stats::choice::ChoiceRule;

/// Configuration of a [`MultiQueue`](crate::queue::MultiQueue).
///
/// The paper (following Rihani et al.) sizes the structure as `c` queues per
/// hardware thread with a small constant `c` (2–4); more queues mean less lock
/// contention but weaker rank guarantees (the bounds scale with the total
/// queue count `n`).
///
/// # Example
///
/// ```
/// use choice_pq::{ChoiceRule, MultiQueueConfig};
///
/// // The paper's (1 + β) rule with β = 0.75 …
/// let cfg = MultiQueueConfig::with_queues(8).with_beta(0.75);
/// assert_eq!(cfg.choice, ChoiceRule::OnePlusBeta(0.75));
///
/// // … or any d-choice rule (d = 2 is the plain MultiQueue, the default).
/// let cfg = MultiQueueConfig::with_queues(8).with_d(4);
/// assert_eq!(cfg.label(), "multiqueue(n=8, d=4)");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MultiQueueConfig {
    /// Total number of internal sequential queues `n`.
    pub queues: usize,
    /// The lane-sampling rule used by `delete_min`. The default is the
    /// classic two-choice rule ([`ChoiceRule::TwoChoice`], `d = 2`); the
    /// paper's (1 + β) variants are [`ChoiceRule::OnePlusBeta`], and
    /// [`ChoiceRule::DChoice`] generalises to any number of samples `d ≥ 1`.
    pub choice: ChoiceRule,
    /// Base seed for the per-handle random number generators.
    pub seed: u64,
    /// Maximum number of try-lock failures tolerated in one operation before
    /// falling back to a blocking lock acquisition (prevents livelock on
    /// heavily oversubscribed machines).
    pub max_retries: usize,
}

impl MultiQueueConfig {
    /// Queues-per-thread factor used by [`MultiQueueConfig::for_threads`].
    pub const DEFAULT_QUEUES_PER_THREAD: usize = 2;

    /// Creates a configuration with an explicit queue count, the two-choice
    /// rule, and the default seed.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn with_queues(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        Self {
            queues,
            choice: ChoiceRule::TwoChoice,
            seed: 0x5EED_CAFE,
            max_retries: 64,
        }
    }

    /// Creates a configuration sized for `threads` worker threads using the
    /// standard `c = 2` queues-per-thread factor.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn for_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self::with_queues(threads * Self::DEFAULT_QUEUES_PER_THREAD)
    }

    /// Creates a configuration sized for `threads` threads with an explicit
    /// queues-per-thread factor `c`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `c == 0`.
    pub fn for_threads_with_factor(threads: usize, c: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(c > 0, "queues-per-thread factor must be positive");
        Self::with_queues(threads * c)
    }

    /// Sets the lane-sampling rule directly.
    ///
    /// # Panics
    ///
    /// Panics if the rule is invalid (see [`ChoiceRule::validate`]).
    pub fn with_choice(mut self, choice: ChoiceRule) -> Self {
        choice.validate();
        self.choice = choice;
        self
    }

    /// Sets the two-choice probability β: the paper's (1 + β) rule, with the
    /// endpoints normalised to [`ChoiceRule::SingleChoice`] / two-choice.
    /// `β = 1` is the original MultiQueue; the paper's experiments show
    /// `β ∈ {0.5, 0.75}` improves throughput by up to 20% at a modest rank
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn with_beta(self, beta: f64) -> Self {
        self.with_choice(ChoiceRule::from_beta(beta))
    }

    /// Sets a uniform `d`-choice rule: every `delete_min` samples `d`
    /// distinct lanes and pops from the one with the smallest top.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn with_d(self, d: usize) -> Self {
        self.with_choice(ChoiceRule::uniform(d))
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the try-lock retry limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_retries == 0`.
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        assert!(max_retries > 0, "retry limit must be positive");
        self.max_retries = max_retries;
        self
    }

    /// The effective two-choice probability β of the configured rule (see
    /// [`ChoiceRule::beta`]).
    pub fn beta(&self) -> f64 {
        self.choice.beta()
    }

    /// Human-readable label used by the benchmark tables, e.g.
    /// `"multiqueue(n=16, beta=0.75)"` or `"multiqueue(n=16, d=4)"`.
    pub fn label(&self) -> String {
        format!("multiqueue(n={}, {})", self.queues, self.choice.label())
    }
}

impl Default for MultiQueueConfig {
    fn default() -> Self {
        Self::for_threads(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_helpers() {
        assert_eq!(MultiQueueConfig::with_queues(5).queues, 5);
        assert_eq!(MultiQueueConfig::for_threads(4).queues, 8);
        assert_eq!(MultiQueueConfig::for_threads_with_factor(4, 3).queues, 12);
        assert!(MultiQueueConfig::default().queues >= 2);
        assert_eq!(
            MultiQueueConfig::default().choice,
            ChoiceRule::TwoChoice,
            "two-choice is the default rule"
        );
    }

    #[test]
    fn builder_chain() {
        let cfg = MultiQueueConfig::with_queues(8)
            .with_beta(0.5)
            .with_seed(9)
            .with_max_retries(16);
        assert_eq!(cfg.queues, 8);
        assert_eq!(cfg.choice, ChoiceRule::OnePlusBeta(0.5));
        assert_eq!(cfg.beta(), 0.5);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_retries, 16);
        assert_eq!(cfg.label(), "multiqueue(n=8, beta=0.5)");
    }

    #[test]
    fn beta_endpoints_normalise_to_uniform_rules() {
        assert_eq!(
            MultiQueueConfig::with_queues(2).with_beta(0.0).choice,
            ChoiceRule::SingleChoice
        );
        assert_eq!(
            MultiQueueConfig::with_queues(2).with_beta(1.0).choice,
            ChoiceRule::TwoChoice
        );
    }

    #[test]
    fn d_choice_builder_and_label() {
        let cfg = MultiQueueConfig::with_queues(16).with_d(8);
        assert_eq!(cfg.choice, ChoiceRule::DChoice(8));
        assert_eq!(cfg.beta(), 1.0);
        assert_eq!(cfg.label(), "multiqueue(n=16, d=8)");
        let single = MultiQueueConfig::with_queues(16).with_d(1);
        assert_eq!(single.beta(), 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least one queue")]
    fn zero_queues_panics() {
        let _ = MultiQueueConfig::with_queues(0);
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_panics() {
        let _ = MultiQueueConfig::for_threads(0);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_beta(-0.1);
    }

    #[test]
    #[should_panic(expected = "d must be positive")]
    fn zero_d_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_d(0);
    }

    #[test]
    #[should_panic(expected = "retry limit must be positive")]
    fn zero_retries_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_max_retries(0);
    }

    #[test]
    #[should_panic(expected = "queues-per-thread factor must be positive")]
    fn zero_factor_panics() {
        let _ = MultiQueueConfig::for_threads_with_factor(2, 0);
    }
}
