//! MultiQueue configuration: sizing, choice rule, sharding and elasticity.

pub use rank_stats::choice::ChoiceRule;

/// Runtime resizing policy of an elastic [`MultiQueue`](crate::MultiQueue).
///
/// A static MultiQueue fixes the lane count `n` at construction; the paper's
/// rank bounds scale with `n`, so over-provisioning buys contention headroom
/// with both rank quality and cache locality (sparse lanes mean sampled tops
/// that are usually empty). An *elastic* queue instead keeps `queues` lanes
/// allocated but only a prefix of them **active**, and a cooperative
/// controller — ticked by ordinary operations, no background thread — moves
/// the active count between [`min_lanes`](ElasticPolicy::min_lanes) and the
/// configured capacity based on two live signals:
///
/// * the **lock-contention rate** (try-lock failures per operation, on both
///   the insert and the delete path) — high contention means the active
///   lanes are too few, so the controller *grows*;
/// * the **sparse-sampling rate** (deleteMin samples whose every sampled top
///   looked empty while the structure was not) — high sparseness means
///   elements are spread over more lanes than the load needs, so the
///   controller *shrinks*.
///
/// Hysteresis comes from three guards: growth and shrink thresholds are
/// separated (a gap no rate can sit on both sides of), decisions are made
/// over windows of [`check_interval`](ElasticPolicy::check_interval)
/// operations rather than per-op, and every resize is followed by
/// [`cooldown_checks`](ElasticPolicy::cooldown_checks) windows in which the
/// controller only observes. See `DESIGN.md` §7 for the resize-epoch
/// correctness argument.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ElasticPolicy {
    /// Floor (and starting value) of the active lane count. Clamped up to
    /// the shard count at queue construction so every shard always owns at
    /// least one active lane.
    pub min_lanes: usize,
    /// Operations between controller decisions (the sampling window).
    pub check_interval: u64,
    /// Grow one step when `lock retries / ops` in the window exceeds this.
    pub grow_threshold: f64,
    /// Shrink one step when `sparse samples / ops` exceeds this **and** the
    /// lock-contention rate sits below half of
    /// [`grow_threshold`](ElasticPolicy::grow_threshold).
    pub shrink_threshold: f64,
    /// Decision windows skipped after every resize (hysteresis).
    pub cooldown_checks: u32,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        Self {
            min_lanes: 2,
            check_interval: 1_024,
            grow_threshold: 0.02,
            shrink_threshold: 0.20,
            cooldown_checks: 1,
        }
    }
}

impl ElasticPolicy {
    /// Sets the active-lane floor.
    ///
    /// # Panics
    ///
    /// Panics if `min_lanes == 0`.
    pub fn with_min_lanes(mut self, min_lanes: usize) -> Self {
        assert!(min_lanes > 0, "need at least one active lane");
        self.min_lanes = min_lanes;
        self
    }

    /// Sets the decision window length in operations.
    ///
    /// # Panics
    ///
    /// Panics if `check_interval == 0`.
    pub fn with_check_interval(mut self, check_interval: u64) -> Self {
        assert!(check_interval > 0, "check interval must be positive");
        self.check_interval = check_interval;
        self
    }

    /// Sets the grow/shrink rate thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless both thresholds are finite and non-negative.
    pub fn with_thresholds(mut self, grow: f64, shrink: f64) -> Self {
        assert!(
            grow.is_finite() && grow >= 0.0 && shrink.is_finite() && shrink >= 0.0,
            "thresholds must be finite and non-negative"
        );
        self.grow_threshold = grow;
        self.shrink_threshold = shrink;
        self
    }

    /// Sets the post-resize cooldown (in decision windows).
    pub fn with_cooldown_checks(mut self, cooldown_checks: u32) -> Self {
        self.cooldown_checks = cooldown_checks;
        self
    }
}

/// Configuration of a [`MultiQueue`](crate::queue::MultiQueue).
///
/// The paper (following Rihani et al.) sizes the structure as `c` queues per
/// hardware thread with a small constant `c` (2–4); more queues mean less lock
/// contention but weaker rank guarantees (the bounds scale with the total
/// queue count `n`).
///
/// # Example
///
/// ```
/// use choice_pq::{ChoiceRule, MultiQueueConfig};
///
/// // The paper's (1 + β) rule with β = 0.75 …
/// let cfg = MultiQueueConfig::with_queues(8).with_beta(0.75);
/// assert_eq!(cfg.choice, ChoiceRule::OnePlusBeta(0.75));
///
/// // … or any d-choice rule (d = 2 is the plain MultiQueue, the default).
/// let cfg = MultiQueueConfig::with_queues(8).with_d(4);
/// assert_eq!(cfg.label(), "multiqueue(n=8, d=4)");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MultiQueueConfig {
    /// Total number of internal sequential queues `n`. For an elastic queue
    /// this is the *capacity* — the maximum active lane count; the live
    /// count moves between [`ElasticPolicy::min_lanes`] and this value.
    pub queues: usize,
    /// Number of insert shards the active lanes are partitioned into
    /// (strided: shard `s` owns active lanes `s, s + shards, …`). Each
    /// session handle holds affinity to one shard and publishes its inserts
    /// there — sticky-lane generalised to sticky-shard — while `delete_min`
    /// keeps sampling across *all* active lanes, so the paper's rank
    /// argument is untouched. `1` (the default) disables sharding.
    pub shards: usize,
    /// Elastic resizing policy; `None` (the default) keeps every lane
    /// active forever (the static paper structure).
    pub elastic: Option<ElasticPolicy>,
    /// The lane-sampling rule used by `delete_min`. The default is the
    /// classic two-choice rule ([`ChoiceRule::TwoChoice`], `d = 2`); the
    /// paper's (1 + β) variants are [`ChoiceRule::OnePlusBeta`], and
    /// [`ChoiceRule::DChoice`] generalises to any number of samples `d ≥ 1`.
    pub choice: ChoiceRule,
    /// Base seed for the per-handle random number generators.
    pub seed: u64,
    /// Maximum number of try-lock failures tolerated in one operation before
    /// falling back to a blocking lock acquisition (prevents livelock on
    /// heavily oversubscribed machines).
    pub max_retries: usize,
    /// Contended-retry count at (or above) which a publish records a
    /// `LaneContention` flight-recorder event, whichever arm published. The
    /// blocking floor-lane fallback always records one; this threshold makes
    /// contention that the fast path absorbed (failed borrow acquisitions
    /// resolved by a retry or by the wait-free side-buffer) visible to the
    /// flight recorder too, not just to the elastic controller's rate
    /// window.
    pub contention_event_threshold: u64,
}

impl MultiQueueConfig {
    /// Queues-per-thread factor used by [`MultiQueueConfig::for_threads`].
    pub const DEFAULT_QUEUES_PER_THREAD: usize = 2;

    /// Creates a configuration with an explicit queue count, the two-choice
    /// rule, and the default seed.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn with_queues(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        assert!(
            queues <= u32::MAX as usize,
            "lane count must fit the packed lane table"
        );
        Self {
            queues,
            shards: 1,
            elastic: None,
            choice: ChoiceRule::TwoChoice,
            seed: 0x5EED_CAFE,
            max_retries: 64,
            contention_event_threshold: 4,
        }
    }

    /// Creates a configuration sized for `threads` worker threads using the
    /// standard `c = 2` queues-per-thread factor.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn for_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self::with_queues(threads * Self::DEFAULT_QUEUES_PER_THREAD)
    }

    /// Creates a configuration sized for `threads` threads with an explicit
    /// queues-per-thread factor `c`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `c == 0`.
    pub fn for_threads_with_factor(threads: usize, c: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(c > 0, "queues-per-thread factor must be positive");
        Self::with_queues(threads * c)
    }

    /// Sets the lane-sampling rule directly.
    ///
    /// # Panics
    ///
    /// Panics if the rule is invalid (see [`ChoiceRule::validate`]).
    pub fn with_choice(mut self, choice: ChoiceRule) -> Self {
        choice.validate();
        self.choice = choice;
        self
    }

    /// Sets the two-choice probability β: the paper's (1 + β) rule, with the
    /// endpoints normalised to [`ChoiceRule::SingleChoice`] / two-choice.
    /// `β = 1` is the original MultiQueue; the paper's experiments show
    /// `β ∈ {0.5, 0.75}` improves throughput by up to 20% at a modest rank
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn with_beta(self, beta: f64) -> Self {
        self.with_choice(ChoiceRule::from_beta(beta))
    }

    /// Sets a uniform `d`-choice rule: every `delete_min` samples `d`
    /// distinct lanes and pops from the one with the smallest top.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn with_d(self, d: usize) -> Self {
        self.with_choice(ChoiceRule::uniform(d))
    }

    /// Sets the insert shard count (see [`MultiQueueConfig::shards`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shards > queues` (every shard must own at
    /// least one lane at full capacity).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(
            shards <= self.queues,
            "shard count {shards} exceeds the lane capacity {}",
            self.queues
        );
        self.shards = shards;
        self
    }

    /// Enables elastic lane resizing with the given policy (see
    /// [`ElasticPolicy`]).
    pub fn with_elastic(mut self, policy: ElasticPolicy) -> Self {
        self.elastic = Some(policy);
        self
    }

    /// The always-active lane floor: `max(policy.min_lanes, shards)` for an
    /// elastic queue (every shard keeps at least one active lane), the full
    /// capacity for a static one. Lanes below this index are never retired,
    /// which the blocking fallback paths rely on.
    pub fn min_active_lanes(&self) -> usize {
        match &self.elastic {
            Some(policy) => policy.min_lanes.max(self.shards).min(self.queues),
            None => self.queues,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the try-lock retry limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_retries == 0`.
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        assert!(max_retries > 0, "retry limit must be positive");
        self.max_retries = max_retries;
        self
    }

    /// Sets the contended-retry count at which a publish records a
    /// `LaneContention` event (see
    /// [`contention_event_threshold`](MultiQueueConfig::contention_event_threshold)).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (every publish would record an event,
    /// flooding the flight recorder).
    pub fn with_contention_event_threshold(mut self, threshold: u64) -> Self {
        assert!(threshold > 0, "contention event threshold must be positive");
        self.contention_event_threshold = threshold;
        self
    }

    /// The effective two-choice probability β of the configured rule (see
    /// [`ChoiceRule::beta`]).
    pub fn beta(&self) -> f64 {
        self.choice.beta()
    }

    /// Human-readable label used by the benchmark tables, e.g.
    /// `"multiqueue(n=16, beta=0.75)"`, `"multiqueue(n=16, d=4)"` or
    /// `"multiqueue(n=4..16, s=2, d=4)"` for an elastic sharded queue.
    pub fn label(&self) -> String {
        let lanes = match &self.elastic {
            Some(_) => format!("n={}..{}", self.min_active_lanes(), self.queues),
            None => format!("n={}", self.queues),
        };
        let shards = if self.shards > 1 {
            format!(", s={}", self.shards)
        } else {
            String::new()
        };
        format!("multiqueue({lanes}{shards}, {})", self.choice.label())
    }
}

impl Default for MultiQueueConfig {
    fn default() -> Self {
        Self::for_threads(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_helpers() {
        assert_eq!(MultiQueueConfig::with_queues(5).queues, 5);
        assert_eq!(MultiQueueConfig::for_threads(4).queues, 8);
        assert_eq!(MultiQueueConfig::for_threads_with_factor(4, 3).queues, 12);
        assert!(MultiQueueConfig::default().queues >= 2);
        assert_eq!(
            MultiQueueConfig::default().choice,
            ChoiceRule::TwoChoice,
            "two-choice is the default rule"
        );
    }

    #[test]
    fn builder_chain() {
        let cfg = MultiQueueConfig::with_queues(8)
            .with_beta(0.5)
            .with_seed(9)
            .with_max_retries(16);
        assert_eq!(cfg.queues, 8);
        assert_eq!(cfg.choice, ChoiceRule::OnePlusBeta(0.5));
        assert_eq!(cfg.beta(), 0.5);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_retries, 16);
        assert_eq!(cfg.label(), "multiqueue(n=8, beta=0.5)");
    }

    #[test]
    fn beta_endpoints_normalise_to_uniform_rules() {
        assert_eq!(
            MultiQueueConfig::with_queues(2).with_beta(0.0).choice,
            ChoiceRule::SingleChoice
        );
        assert_eq!(
            MultiQueueConfig::with_queues(2).with_beta(1.0).choice,
            ChoiceRule::TwoChoice
        );
    }

    #[test]
    fn d_choice_builder_and_label() {
        let cfg = MultiQueueConfig::with_queues(16).with_d(8);
        assert_eq!(cfg.choice, ChoiceRule::DChoice(8));
        assert_eq!(cfg.beta(), 1.0);
        assert_eq!(cfg.label(), "multiqueue(n=16, d=8)");
        let single = MultiQueueConfig::with_queues(16).with_d(1);
        assert_eq!(single.beta(), 0.0);
    }

    #[test]
    fn shard_and_elastic_builders() {
        let cfg = MultiQueueConfig::with_queues(16)
            .with_shards(4)
            .with_elastic(ElasticPolicy::default().with_min_lanes(2));
        assert_eq!(cfg.shards, 4);
        // The floor is clamped up to the shard count.
        assert_eq!(cfg.min_active_lanes(), 4);
        assert_eq!(cfg.label(), "multiqueue(n=4..16, s=4, d=2)");
        // A static config's floor is the full capacity.
        assert_eq!(MultiQueueConfig::with_queues(8).min_active_lanes(), 8);
        // The floor never exceeds the capacity.
        let wide = MultiQueueConfig::with_queues(4)
            .with_elastic(ElasticPolicy::default().with_min_lanes(100));
        assert_eq!(wide.min_active_lanes(), 4);
    }

    #[test]
    fn elastic_policy_builders_chain() {
        let p = ElasticPolicy::default()
            .with_min_lanes(3)
            .with_check_interval(512)
            .with_thresholds(0.1, 0.4)
            .with_cooldown_checks(5);
        assert_eq!(p.min_lanes, 3);
        assert_eq!(p.check_interval, 512);
        assert_eq!(p.grow_threshold, 0.1);
        assert_eq!(p.shrink_threshold, 0.4);
        assert_eq!(p.cooldown_checks, 5);
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_panics() {
        let _ = MultiQueueConfig::with_queues(4).with_shards(0);
    }

    #[test]
    #[should_panic(expected = "exceeds the lane capacity")]
    fn more_shards_than_lanes_panics() {
        let _ = MultiQueueConfig::with_queues(4).with_shards(5);
    }

    #[test]
    #[should_panic(expected = "need at least one active lane")]
    fn zero_min_lanes_panics() {
        let _ = ElasticPolicy::default().with_min_lanes(0);
    }

    #[test]
    #[should_panic(expected = "check interval must be positive")]
    fn zero_check_interval_panics() {
        let _ = ElasticPolicy::default().with_check_interval(0);
    }

    #[test]
    #[should_panic(expected = "thresholds must be finite")]
    fn nan_thresholds_panic() {
        let _ = ElasticPolicy::default().with_thresholds(f64::NAN, 0.1);
    }

    #[test]
    #[should_panic(expected = "need at least one queue")]
    fn zero_queues_panics() {
        let _ = MultiQueueConfig::with_queues(0);
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_panics() {
        let _ = MultiQueueConfig::for_threads(0);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_beta(-0.1);
    }

    #[test]
    #[should_panic(expected = "d must be positive")]
    fn zero_d_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_d(0);
    }

    #[test]
    #[should_panic(expected = "retry limit must be positive")]
    fn zero_retries_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_max_retries(0);
    }

    #[test]
    fn contention_event_threshold_builder() {
        assert_eq!(
            MultiQueueConfig::with_queues(2).contention_event_threshold,
            4
        );
        let cfg = MultiQueueConfig::with_queues(2).with_contention_event_threshold(1);
        assert_eq!(cfg.contention_event_threshold, 1);
    }

    #[test]
    #[should_panic(expected = "contention event threshold must be positive")]
    fn zero_contention_event_threshold_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_contention_event_threshold(0);
    }

    #[test]
    #[should_panic(expected = "queues-per-thread factor must be positive")]
    fn zero_factor_panics() {
        let _ = MultiQueueConfig::for_threads_with_factor(2, 0);
    }
}
