//! MultiQueue configuration.

/// Configuration of a [`MultiQueue`](crate::queue::MultiQueue).
///
/// The paper (following Rihani et al.) sizes the structure as `c` queues per
/// hardware thread with a small constant `c` (2–4); more queues mean less lock
/// contention but weaker rank guarantees (the bounds scale with the total
/// queue count `n`).
#[derive(Clone, Debug, PartialEq)]
pub struct MultiQueueConfig {
    /// Total number of internal sequential queues `n`.
    pub queues: usize,
    /// The two-choice probability `β ∈ [0, 1]`. `β = 1` is the original
    /// MultiQueue; the paper's experiments show `β ∈ {0.5, 0.75}` improves
    /// throughput by up to 20% at a modest rank cost.
    pub beta: f64,
    /// Base seed for the per-thread random number generators.
    pub seed: u64,
    /// Maximum number of try-lock failures tolerated in one operation before
    /// falling back to a blocking lock acquisition (prevents livelock on
    /// heavily oversubscribed machines).
    pub max_retries: usize,
}

impl MultiQueueConfig {
    /// Queues-per-thread factor used by [`MultiQueueConfig::for_threads`].
    pub const DEFAULT_QUEUES_PER_THREAD: usize = 2;

    /// Creates a configuration with an explicit queue count, `β = 1`, and the
    /// default seed.
    ///
    /// # Panics
    ///
    /// Panics if `queues == 0`.
    pub fn with_queues(queues: usize) -> Self {
        assert!(queues > 0, "need at least one queue");
        Self {
            queues,
            beta: 1.0,
            seed: 0x5EED_CAFE,
            max_retries: 64,
        }
    }

    /// Creates a configuration sized for `threads` worker threads using the
    /// standard `c = 2` queues-per-thread factor.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn for_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self::with_queues(threads * Self::DEFAULT_QUEUES_PER_THREAD)
    }

    /// Creates a configuration sized for `threads` threads with an explicit
    /// queues-per-thread factor `c`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `c == 0`.
    pub fn for_threads_with_factor(threads: usize, c: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(c > 0, "queues-per-thread factor must be positive");
        Self::with_queues(threads * c)
    }

    /// Sets the two-choice probability β.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
        self.beta = beta;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the try-lock retry limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_retries == 0`.
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        assert!(max_retries > 0, "retry limit must be positive");
        self.max_retries = max_retries;
        self
    }

    /// Human-readable label used by the benchmark tables, e.g.
    /// `"multiqueue(n=16, beta=0.75)"`.
    pub fn label(&self) -> String {
        format!("multiqueue(n={}, beta={})", self.queues, self.beta)
    }
}

impl Default for MultiQueueConfig {
    fn default() -> Self {
        Self::for_threads(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_helpers() {
        assert_eq!(MultiQueueConfig::with_queues(5).queues, 5);
        assert_eq!(MultiQueueConfig::for_threads(4).queues, 8);
        assert_eq!(MultiQueueConfig::for_threads_with_factor(4, 3).queues, 12);
        assert!(MultiQueueConfig::default().queues >= 2);
    }

    #[test]
    fn builder_chain() {
        let cfg = MultiQueueConfig::with_queues(8)
            .with_beta(0.5)
            .with_seed(9)
            .with_max_retries(16);
        assert_eq!(cfg.queues, 8);
        assert_eq!(cfg.beta, 0.5);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.max_retries, 16);
        assert_eq!(cfg.label(), "multiqueue(n=8, beta=0.5)");
    }

    #[test]
    #[should_panic(expected = "need at least one queue")]
    fn zero_queues_panics() {
        let _ = MultiQueueConfig::with_queues(0);
    }

    #[test]
    #[should_panic(expected = "need at least one thread")]
    fn zero_threads_panics() {
        let _ = MultiQueueConfig::for_threads(0);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn invalid_beta_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_beta(-0.1);
    }

    #[test]
    #[should_panic(expected = "retry limit must be positive")]
    fn zero_retries_panics() {
        let _ = MultiQueueConfig::with_queues(2).with_max_retries(0);
    }

    #[test]
    #[should_panic(expected = "queues-per-thread factor must be positive")]
    fn zero_factor_panics() {
        let _ = MultiQueueConfig::for_threads_with_factor(2, 0);
    }
}
