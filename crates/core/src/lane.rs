//! The lock-free lane fast path: seqlock-published top, borrow-state
//! exclusive acquisition, and a wait-free MPSC insert side-buffer.
//!
//! A [`Lane`] replaces the old `Mutex<BinaryHeap<V>>` front door with three
//! cooperating words (DESIGN.md §13):
//!
//! - **`state`** — an `AtomicRefCell`-style borrow word: bit 63 is the
//!   exclusive-borrow flag ([`EXCL`], held by drains, steals, shrinks and
//!   direct inserts), the low 63 bits count in-flight side-buffer
//!   publishers. Exclusive acquisition is a single `fetch_or`; a loser has
//!   nothing to undo because the `fetch_or` of an already-set bit is a
//!   no-op.
//! - **`top_seq`/`top`** — a seqlock-style stamped top-of-lane. `top_seq`
//!   is odd exactly while a *drain-type* exclusive section (one that may
//!   remove the current minimum) is in progress, so a lock-free reader can
//!   tell "this top may be mid-removal" apart from a settled value and
//!   never acts on a torn top-vs-emptiness observation. Insert-type
//!   sections do not bump the stamp: publishing a new top is a single
//!   atomic store and both the old and new value are valid samples.
//! - **`side`** — a Vyukov-style MPSC intrusive queue (stub-node variant of
//!   the Michael–Scott idiom). When an inserter loses the borrow race it
//!   pushes its entry here in two wait-free steps (`swap` + link store) and
//!   leaves; whoever holds the exclusive borrow folds the side-buffer into
//!   the heap at acquire and release, so conservation holds by
//!   construction.
//!
//! This module is the one place in the crate allowed to use `unsafe`: the
//! heap sits in an `UnsafeCell` proven unique by the `EXCL` bit, and the
//! side-buffer nodes are raw-pointer linked. Every `unsafe` block carries
//! its proof obligation inline.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr;

use seq_pq::{BinaryHeap, Key, SequentialPriorityQueue};

use crate::sync::{AtomicPtr, AtomicU64, Ordering};

/// Sentinel published in [`Lane::top`] ([`Lane::sample_top`]) when the lane
/// holds no element. Inserting `u64::MAX` as a key is rejected at the API
/// boundary (`check_key`) so the sentinel is unambiguous.
pub(crate) const EMPTY_TOP: u64 = u64::MAX;

/// Exclusive-borrow flag in [`Lane::state`] (bit 63).
const EXCL: u64 = 1 << 63;

/// Low bits of [`Lane::state`]: the in-flight side-publisher count.
const COUNT_MASK: u64 = EXCL - 1;

/// One node of the side-buffer. `value` is an `Option` only so the single
/// consumer can move it out of the node that then becomes the new stub.
struct SideNode<V> {
    next: AtomicPtr<SideNode<V>>,
    key: Key,
    value: Option<V>,
}

/// Vyukov-style MPSC queue with a stub node: multi-producer wait-free
/// `push`, single-consumer `pop` (callers prove single-consumer by holding
/// the lane's exclusive borrow).
struct SideQueue<V> {
    /// Consumer-owned head (the current stub); touched only under `EXCL`.
    head: UnsafeCell<*mut SideNode<V>>,
    /// Producer-side tail; the last node whose `next` is still null (or
    /// about to be linked).
    tail: AtomicPtr<SideNode<V>>,
}

impl<V> SideQueue<V> {
    fn new() -> Self {
        let stub = Box::into_raw(Box::new(SideNode {
            next: AtomicPtr::new(ptr::null_mut()),
            key: EMPTY_TOP,
            value: None,
        }));
        Self {
            head: UnsafeCell::new(stub),
            tail: AtomicPtr::new(stub),
        }
    }

    /// Wait-free multi-producer push: two unconditional atomic steps, no
    /// CAS loop. Between the `swap` and the link store the node is
    /// reachable from `tail` but not yet from `head`; the consumer simply
    /// reports empty past that point and retrieves the entry at a later
    /// fold (the publisher count in `Lane::state` is what makes a shrink
    /// wait for the link to land).
    fn push(&self, key: Key, value: V) {
        let node = Box::into_raw(Box::new(SideNode {
            next: AtomicPtr::new(ptr::null_mut()),
            key,
            value: Some(value),
        }));
        let prev = self.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `prev` cannot have been freed: the consumer frees a node
        // only after reading a non-null `next` out of it, and `prev.next`
        // stays null until this very store.
        unsafe { (*prev).next.store(node, Ordering::Release) };
    }

    /// Single-consumer pop.
    ///
    /// # Safety
    /// The caller must hold the lane's exclusive borrow (`EXCL`), which is
    /// what makes `head` uniquely owned.
    unsafe fn pop(&self) -> Option<(Key, V)> {
        // SAFETY (whole body): `EXCL` makes us the only thread reading or
        // writing `head`; nodes reachable from `head` were fully published
        // by the `Release` link store that made them reachable, which our
        // `Acquire` load synchronizes with.
        unsafe {
            let head = *self.head.get();
            let next = (*head).next.load(Ordering::Acquire);
            if next.is_null() {
                return None; // empty, or a push is mid-link
            }
            let key = (*next).key;
            let value = (*next).value.take().expect("side node consumed twice");
            *self.head.get() = next; // `next` becomes the new stub
            drop(Box::from_raw(head));
            Some((key, value))
        }
    }
}

impl<V> Drop for SideQueue<V> {
    fn drop(&mut self) {
        // `&mut self` proves no concurrent producers or consumer, and every
        // completed `push` completed its link store, so the chain is whole.
        // SAFETY: exclusive access per above; `pop`'s requirement (unique
        // consumer) is met trivially.
        unsafe {
            while self.pop().is_some() {}
            drop(Box::from_raw(*self.head.get()));
        }
    }
}

// SAFETY: the queue hands `V`s across threads (producer boxes them,
// consumer unboxes them) but never shares a `&V`, so `V: Send` suffices.
unsafe impl<V: Send> Send for SideQueue<V> {}
// SAFETY: all shared-path mutation goes through atomics; `head` is only
// touched under the caller-supplied exclusive-borrow proof.
unsafe impl<V: Send> Sync for SideQueue<V> {}

/// One lane: borrow word + seqlock-stamped top + side-buffer + heap.
pub(crate) struct Lane<V> {
    /// Borrow word: bit 63 = exclusive ([`EXCL`]), low bits = in-flight
    /// side publishers.
    state: AtomicU64,
    /// Seqlock stamp for `top`: odd while a drain-type exclusive section
    /// is in progress.
    top_seq: AtomicU64,
    /// Cached minimum key, [`EMPTY_TOP`] when the lane is empty. Published
    /// by [`LaneGuard`] release.
    top: AtomicU64,
    /// Wait-free insert side-buffer, folded into `heap` under `EXCL`.
    side: SideQueue<V>,
    /// The sequential heap; unique access proven by the `EXCL` bit.
    heap: UnsafeCell<BinaryHeap<V>>,
}

// SAFETY: `heap` and `side.head` are only touched while `state`'s `EXCL`
// bit grants unique access (acquire/release on the borrow word order those
// accesses); everything else is atomics. Moving `V`s across threads needs
// `V: Send` only — no `&V` is ever shared.
unsafe impl<V: Send> Send for Lane<V> {}
unsafe impl<V: Send> Sync for Lane<V> {}

impl<V> Lane<V> {
    pub(crate) fn new() -> Self {
        Self {
            state: AtomicU64::new(0),
            top_seq: AtomicU64::new(0),
            top: AtomicU64::new(EMPTY_TOP),
            side: SideQueue::new(),
            heap: UnsafeCell::new(BinaryHeap::new()),
        }
    }

    /// Attempts the exclusive borrow; on success returns a guard with
    /// unique heap access, having already folded any settled side-buffer
    /// entries into the heap. A `drain`-type guard (one that may remove
    /// the current minimum) marks `top_seq` odd for its whole critical
    /// section so lock-free top readers can refuse a mid-removal sample.
    ///
    /// Failure is free: `fetch_or` of an already-set bit changed nothing,
    /// so there is no loser cleanup (the AtomicRefCell trick).
    pub(crate) fn try_exclusive(&self, drain: bool) -> Option<LaneGuard<'_, V>> {
        let prev = self.state.fetch_or(EXCL, Ordering::Acquire);
        if prev & EXCL != 0 {
            return None;
        }
        if drain {
            // Plain load+store: `top_seq` is only written under `EXCL`, so
            // there is exactly one writer — no RMW needed (seqlock idiom).
            let s = self.top_seq.load(Ordering::Relaxed);
            self.top_seq.store(s + 1, Ordering::Release); // odd: mid-drain
        }
        let mut guard = LaneGuard { lane: self, drain };
        guard.fold();
        Some(guard)
    }

    /// Acquires the exclusive borrow, spinning until the current holder
    /// releases. Only drains, steals, resizes and diagnostics block here;
    /// the insert path never does (it side-publishes instead).
    pub(crate) fn exclusive_blocking(&self, drain: bool) -> LaneGuard<'_, V> {
        let mut spins = 0u32;
        loop {
            if let Some(guard) = self.try_exclusive(drain) {
                return guard;
            }
            crate::sync::spin(&mut spins);
        }
    }

    /// Registers an in-flight side publisher. `SeqCst` pairs with the
    /// `SeqCst` lane-table store in `resize_locked`: if the publisher's
    /// subsequent table load sees the pre-shrink table, this increment is
    /// ordered before the shrinker's [`Self::wait_inserters_idle`] loop,
    /// so the shrink waits for the push to land (Dekker-style store/load
    /// pairing; see DESIGN.md §13.4).
    pub(crate) fn register_inserter(&self) {
        self.state.fetch_add(1, Ordering::SeqCst);
    }

    /// Deregisters a side publisher after its push (and its `len` credit)
    /// are visible; `Release` so a shrinker's idle-read of the count
    /// synchronizes with the push.
    pub(crate) fn deregister_inserter(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    /// Wait-free side-buffer publish; the caller must be registered via
    /// [`Self::register_inserter`].
    pub(crate) fn side_push(&self, key: Key, value: V) {
        self.side.push(key, value);
    }

    /// Spins until no side publisher is in flight. Used by the shrink path
    /// (under a drain-type exclusive borrow) before its final fold:
    /// registered publishers either saw the pre-shrink table (their push
    /// lands before the count returns to zero) or will see the post-shrink
    /// table and deregister without pushing — either way, once the count
    /// is zero the fold is complete.
    pub(crate) fn wait_inserters_idle(&self) {
        let mut spins = 0u32;
        while self.state.load(Ordering::SeqCst) & COUNT_MASK != 0 {
            crate::sync::spin(&mut spins);
        }
    }

    /// Seqlock read of the cached top: `None` when a drain-type section is
    /// in progress (stamp odd or moved), `Some(EMPTY_TOP)` for a settled
    /// empty lane. Zero lock acquisitions, and never a torn
    /// top-vs-emptiness observation: a `Some` sample was published by a
    /// completed critical section.
    pub(crate) fn sample_top(&self) -> Option<u64> {
        let s1 = self.top_seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        let top = self.top.load(Ordering::Acquire);
        if self.top_seq.load(Ordering::Acquire) != s1 {
            return None;
        }
        Some(top)
    }

    /// Raw (possibly mid-drain) read of the cached top, for heuristics and
    /// diagnostics that tolerate staleness.
    pub(crate) fn load_top(&self) -> u64 {
        self.top.load(Ordering::Relaxed)
    }
}

impl<V> fmt::Debug for Lane<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The heap is not readable without the borrow; report the words.
        f.debug_struct("Lane")
            .field("state", &self.state.load(Ordering::Relaxed))
            .field("top", &self.top.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII witness of the exclusive borrow; dereferences to the lane heap.
/// Release folds the side-buffer once more, republishes `top`, closes the
/// seqlock section (drain-type only) and clears the `EXCL` bit.
pub(crate) struct LaneGuard<'a, V> {
    lane: &'a Lane<V>,
    drain: bool,
}

impl<V> LaneGuard<'_, V> {
    /// Folds every settled side-buffer entry into the heap. Called at
    /// acquire and release automatically; the shrink path also calls it
    /// explicitly after [`Lane::wait_inserters_idle`].
    pub(crate) fn fold(&mut self) {
        // SAFETY: the guard witnesses `EXCL`, satisfying `pop`'s
        // single-consumer requirement; the heap reference is unique for
        // the same reason.
        unsafe {
            while let Some((key, value)) = self.lane.side.pop() {
                (*self.lane.heap.get()).push(key, value);
            }
        }
    }
}

impl<V> Deref for LaneGuard<'_, V> {
    type Target = BinaryHeap<V>;
    fn deref(&self) -> &BinaryHeap<V> {
        // SAFETY: `EXCL` is held for the guard's lifetime.
        unsafe { &*self.lane.heap.get() }
    }
}

impl<V> DerefMut for LaneGuard<'_, V> {
    fn deref_mut(&mut self) -> &mut BinaryHeap<V> {
        // SAFETY: `EXCL` is held for the guard's lifetime.
        unsafe { &mut *self.lane.heap.get() }
    }
}

impl<V> Drop for LaneGuard<'_, V> {
    fn drop(&mut self) {
        self.fold();
        let top = self.peek_key().unwrap_or(EMPTY_TOP);
        if self.lane.top.load(Ordering::Relaxed) != top {
            self.lane.top.store(top, Ordering::Release);
        }
        if self.drain {
            // Single writer under `EXCL` (same argument as acquire).
            let s = self.lane.top_seq.load(Ordering::Relaxed);
            self.lane.top_seq.store(s + 1, Ordering::Release); // even again
        }
        self.lane.state.fetch_and(!EXCL, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_queue_is_fifo_and_frees_everything() {
        let q: SideQueue<String> = SideQueue::new();
        q.push(3, "c".into());
        q.push(1, "a".into());
        q.push(2, "b".into());
        // SAFETY: single-threaded test — trivially the unique consumer.
        unsafe {
            assert_eq!(q.pop(), Some((3, "c".into())));
            assert_eq!(q.pop(), Some((1, "a".into())));
        }
        // One entry left; Drop must free it plus the stub (miri/asan
        // territory, but the test at least exercises the path).
    }

    #[test]
    fn exclusive_borrow_is_mutual_and_cheap_to_lose() {
        let lane: Lane<u32> = Lane::new();
        let g = lane.try_exclusive(false).expect("uncontended");
        assert!(lane.try_exclusive(false).is_none());
        assert!(lane.try_exclusive(true).is_none());
        drop(g);
        assert!(lane.try_exclusive(true).is_some());
    }

    #[test]
    fn drain_sections_hide_top_from_samplers() {
        let lane: Lane<u32> = Lane::new();
        {
            let mut g = lane.try_exclusive(false).expect("uncontended");
            g.push(7, 70);
        }
        assert_eq!(lane.sample_top(), Some(7));
        {
            let g = lane.try_exclusive(true).expect("uncontended");
            assert_eq!(lane.sample_top(), None, "mid-drain sample must refuse");
            drop(g);
        }
        assert_eq!(lane.sample_top(), Some(7));
    }

    #[test]
    fn guard_folds_side_entries_and_republishes_top() {
        let lane: Lane<u32> = Lane::new();
        let g = lane.try_exclusive(false).expect("uncontended");
        lane.register_inserter();
        lane.side_push(5, 50);
        lane.deregister_inserter();
        drop(g); // release fold picks the entry up
        assert_eq!(lane.sample_top(), Some(5));
        let mut g = lane.try_exclusive(true).expect("uncontended");
        assert_eq!(g.pop(), Some((5, 50)));
        drop(g);
        assert_eq!(lane.sample_top(), Some(EMPTY_TOP));
    }
}
