//! Session handles for *flat* queues — structures whose operations are
//! intrinsically shared (`&self`) and need no per-session randomness.
//!
//! Centralized exact queues like the coarse-locked heap or the skiplist queue
//! synchronise every operation on shared state anyway, so their session
//! handle only needs to carry the per-session statistics. Implementing
//! [`FlatOps`] gives such a queue a ready-made [`PqHandle`] type
//! ([`FlatHandle`]) so it can implement [`SharedPq`](crate::SharedPq) in a few lines:
//!
//! ```
//! use choice_pq::{FlatHandle, FlatOps, Key, PqHandle, SharedPq};
//!
//! struct LockedVec(std::sync::Mutex<Vec<(Key, u32)>>);
//!
//! impl FlatOps<u32> for LockedVec {
//!     fn flat_insert(&self, key: Key, value: u32) {
//!         self.0.lock().unwrap().push((key, value));
//!     }
//!     fn flat_delete_min(&self) -> Option<(Key, u32)> {
//!         let mut v = self.0.lock().unwrap();
//!         let i = v.iter().enumerate().min_by_key(|(_, (k, _))| *k).map(|(i, _)| i)?;
//!         Some(v.swap_remove(i))
//!     }
//! }
//!
//! impl SharedPq<u32> for LockedVec {
//!     type Handle<'q> = FlatHandle<'q, Self, u32>;
//!     fn register(&self) -> Self::Handle<'_> {
//!         FlatHandle::new(self)
//!     }
//!     fn approx_len(&self) -> usize {
//!         self.0.lock().unwrap().len()
//!     }
//!     fn name(&self) -> String {
//!         "locked-vec".into()
//!     }
//! }
//!
//! let q = LockedVec(std::sync::Mutex::new(Vec::new()));
//! let mut h = q.register();
//! h.insert(4, 40);
//! assert_eq!(h.delete_min(), Some((4, 40)));
//! ```

use std::marker::PhantomData;

use crate::traits::{HandleStats, Key, PqHandle};

/// The shared-operation core of a flat (centralized, sessionless) queue.
///
/// Implementations own their synchronisation; key validation is enforced
/// once by [`FlatHandle::insert`], so `flat_insert` may assume the key is
/// legal.
pub trait FlatOps<V>: Send + Sync {
    /// Inserts an entry into the shared structure.
    fn flat_insert(&self, key: Key, value: V);

    /// Removes a smallest entry from the shared structure.
    fn flat_delete_min(&self) -> Option<(Key, V)>;
}

/// A [`PqHandle`] over a [`FlatOps`] queue: forwards operations to the shared
/// structure and keeps per-session statistics.
#[derive(Debug)]
pub struct FlatHandle<'q, Q: ?Sized, V> {
    queue: &'q Q,
    stats: HandleStats,
    _values: PhantomData<fn(V) -> V>,
}

impl<'q, Q: ?Sized, V> FlatHandle<'q, Q, V> {
    /// Opens a session over `queue`.
    pub fn new(queue: &'q Q) -> Self {
        Self {
            queue,
            stats: HandleStats::default(),
            _values: PhantomData,
        }
    }
}

impl<V, Q: FlatOps<V> + ?Sized> PqHandle<V> for FlatHandle<'_, Q, V> {
    fn insert(&mut self, key: Key, value: V) {
        crate::traits::check_key(key);
        self.stats.inserts += 1;
        self.queue.flat_insert(key, value);
    }

    fn delete_min(&mut self) -> Option<(Key, V)> {
        let result = self.queue.flat_delete_min();
        if result.is_some() {
            self.stats.removals += 1;
        } else {
            // Flat structures synchronise every operation, so a `None` is an
            // authoritative emptiness observation, never a lost race.
            self.stats.failed_removals += 1;
            self.stats.empty_polls += 1;
        }
        result
    }

    fn stats(&self) -> HandleStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MinVec(std::sync::Mutex<Vec<(Key, u8)>>);

    impl FlatOps<u8> for MinVec {
        fn flat_insert(&self, key: Key, value: u8) {
            self.0.lock().unwrap().push((key, value));
        }
        fn flat_delete_min(&self) -> Option<(Key, u8)> {
            let mut v = self.0.lock().unwrap();
            let i = v
                .iter()
                .enumerate()
                .min_by_key(|(_, (k, _))| *k)
                .map(|(i, _)| i)?;
            Some(v.swap_remove(i))
        }
    }

    #[test]
    fn forwards_and_counts() {
        let q = MinVec(std::sync::Mutex::new(Vec::new()));
        let mut h = FlatHandle::new(&q);
        h.insert(8, 1);
        h.insert(2, 2);
        assert_eq!(h.delete_min(), Some((2, 2)));
        assert_eq!(h.delete_min(), Some((8, 1)));
        assert_eq!(h.delete_min(), None);
        let stats = h.stats();
        assert_eq!(
            (stats.inserts, stats.removals, stats.failed_removals),
            (2, 2, 1)
        );
        // flush is a no-op for flat handles.
        h.flush();
    }
}
