//! Queue-level telemetry: the [`QueueObs`] bundle a [`MultiQueue`] writes
//! its metrics and flight-recorder events through.
//!
//! The bundle is attached *before* the queue is shared
//! ([`MultiQueue::attach_obs`]) so the hot path pays exactly one branch when
//! telemetry is disabled and one sharded, uncontended `fetch_add` per
//! operation when enabled. Latency profiling is sampled 1-in-N at the handle
//! layer (see [`LatencySampler`]); structural events (resizes, controller
//! decisions, floor-lane contention) are rare by construction and go to the
//! flight recorder off the lock-free fast path.
//!
//! [`MultiQueue`]: crate::MultiQueue
//! [`MultiQueue::attach_obs`]: crate::MultiQueue::attach_obs
//! [`LatencySampler`]: choice_obs::LatencySampler

use std::sync::Arc;

use choice_obs::{Counter, EventKind, FlightRecorder, Histogram, ObsHub, SpanRing};

/// Default 1-in-N stride for handle-level latency sampling: two clock reads
/// every 64 operations keeps the profiling cost far below the ~3% telemetry
/// budget while the log-bucketed histograms only need order-of-magnitude
/// resolution anyway.
pub const DEFAULT_SAMPLE_EVERY: u32 = 64;

/// The per-queue telemetry bundle: counters, latency histograms and the
/// flight recorder, pre-resolved from an [`ObsHub`] at attach time so the
/// hot path never touches the registry's name map.
#[derive(Debug)]
pub struct QueueObs {
    recorder: Arc<FlightRecorder>,
    label: String,
    /// Operations folded into the controller tick (inserts, batch elements,
    /// removal attempts).
    pub(crate) ops_total: Arc<Counter>,
    /// Retry-loop iterations lost to lock contention.
    pub(crate) lock_retries_total: Arc<Counter>,
    /// Retry-loop iterations where every sampled top looked empty.
    pub(crate) sparse_retries_total: Arc<Counter>,
    /// Completed lane-table resizes.
    pub(crate) resizes_total: Arc<Counter>,
    /// Elastic-controller decision windows closed.
    pub(crate) controller_ticks_total: Arc<Counter>,
    /// Sampled `insert` latency (ns).
    pub(crate) insert_ns: Arc<Histogram>,
    /// Sampled `delete_min` latency (ns).
    pub(crate) delete_min_ns: Arc<Histogram>,
    /// Sampled `delete_min_batch` latency (ns).
    pub(crate) delete_min_batch_ns: Arc<Histogram>,
    /// Live rank-error bound from the sampled lane-top shadow probe (see
    /// [`MultiQueue::lane_rank_bound`](crate::MultiQueue::lane_rank_bound)).
    pub(crate) rank_error: Arc<Histogram>,
    /// When tracing is enabled, sampled operations also record a span into
    /// the hub's ring — the same write a traced wire request costs the
    /// server, so `t13_obs` can price the traced mode in-process.
    span_ring: Option<Arc<SpanRing>>,
    sample_every: u32,
}

impl QueueObs {
    /// Builds the bundle for queue `queue` against `hub`, with the
    /// [default sampling stride](DEFAULT_SAMPLE_EVERY).
    pub fn new(hub: &ObsHub, queue: &str) -> Arc<Self> {
        Self::with_sample_every(hub, queue, DEFAULT_SAMPLE_EVERY)
    }

    /// Builds the bundle with an explicit latency-sampling stride (1 times
    /// every operation).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn with_sample_every(hub: &ObsHub, queue: &str, sample_every: u32) -> Arc<Self> {
        Self::build(hub, queue, sample_every, false)
    }

    /// Builds the bundle with per-sampled-op span tracing: every sampled
    /// operation also records a [`SpanRecord`](choice_obs::SpanRecord) into
    /// the hub's span ring (only the queue-op stage carries time — there is
    /// no wire pipeline in-process). This is the "attached + traced" mode
    /// `t13_obs` prices against the overhead budget.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn with_trace(hub: &ObsHub, queue: &str, sample_every: u32) -> Arc<Self> {
        Self::build(hub, queue, sample_every, true)
    }

    fn build(hub: &ObsHub, queue: &str, sample_every: u32, traced: bool) -> Arc<Self> {
        assert!(sample_every > 0, "sampling stride must be positive");
        let m = hub.metrics();
        let labels: &[(&str, &str)] = &[("queue", queue)];
        Arc::new(Self {
            recorder: Arc::clone(hub.recorder()),
            label: queue.to_string(),
            ops_total: m.counter("mq_ops_total", labels),
            lock_retries_total: m.counter("mq_lock_retries_total", labels),
            sparse_retries_total: m.counter("mq_sparse_retries_total", labels),
            resizes_total: m.counter("mq_resizes_total", labels),
            controller_ticks_total: m.counter("mq_controller_ticks_total", labels),
            insert_ns: m.histogram("mq_op_ns", &[("queue", queue), ("op", "insert")]),
            delete_min_ns: m.histogram("mq_op_ns", &[("queue", queue), ("op", "delete_min")]),
            delete_min_batch_ns: m
                .histogram("mq_op_ns", &[("queue", queue), ("op", "delete_min_batch")]),
            rank_error: m.histogram("mq_rank_error", labels),
            span_ring: traced.then(|| Arc::clone(hub.spans())),
            sample_every,
        })
    }

    /// The queue label stamped on events and metric rows.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The handle-level latency sampling stride.
    pub fn sample_every(&self) -> u32 {
        self.sample_every
    }

    /// The flight recorder events flow into.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The span ring sampled operations trace into, when built with
    /// [`with_trace`](Self::with_trace).
    pub fn span_ring(&self) -> Option<&Arc<SpanRing>> {
        self.span_ring.as_ref()
    }

    /// The live rank-error histogram (`mq_rank_error{queue=...}`).
    pub fn rank_error(&self) -> &Arc<Histogram> {
        &self.rank_error
    }

    /// A committed lane-table resize (called with the resize mutex held;
    /// the record itself is lock-free).
    pub(crate) fn on_resize(&self, epoch: u64, from: usize, to: usize) {
        self.resizes_total.inc();
        self.recorder.record(
            EventKind::Resize,
            &self.label,
            [epoch, from as u64, to as u64],
        );
    }

    /// An elastic-controller window closed (`decision`: 0 hold, 1 grow,
    /// 2 shrink).
    pub(crate) fn on_controller_tick(&self, decision: u64, lock: u64, sparse: u64) {
        self.controller_ticks_total.inc();
        self.recorder.record(
            EventKind::ControllerTick,
            &self.label,
            [decision, lock, sparse],
        );
    }

    /// An insert's publish was contended: it either fell through to the
    /// floor-lane arm (always recorded, whatever the retry count), or
    /// published on a faster arm after accumulating at least
    /// [`contention_event_threshold`](crate::MultiQueueConfig::contention_event_threshold)
    /// contended retries. `lane` is the lane that finally took the
    /// elements, `retries` the full count — so fast-path contention reaches
    /// the flight recorder, not just the elastic controller's rate window.
    pub(crate) fn on_lane_contention(&self, lane: usize, retries: u64) {
        self.recorder.record(
            EventKind::LaneContention,
            &self.label,
            [lane as u64, retries, 0],
        );
    }

    /// The per-operation counter fold: one sharded `fetch_add` per call on
    /// the hot path, plus conditional adds for the (rare) retry counters.
    #[inline]
    pub(crate) fn on_ops(&self, ops: u64, lock_retries: u64, sparse_retries: u64) {
        self.ops_total.add(ops);
        if lock_retries > 0 {
            self.lock_retries_total.add(lock_retries);
        }
        if sparse_retries > 0 {
            self.sparse_retries_total.add(sparse_retries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ElasticPolicy, MultiQueueConfig};
    use crate::traits::{PqHandle, SharedPq};
    use crate::MultiQueue;

    fn observed_queue(hub: &Arc<ObsHub>) -> MultiQueue<u64> {
        let mut q = MultiQueue::new(
            MultiQueueConfig::with_queues(8)
                .with_seed(42)
                .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
        );
        q.attach_obs(QueueObs::with_sample_every(hub, "q0", 1));
        q
    }

    #[test]
    fn ops_and_latency_flow_into_the_hub() {
        let hub = ObsHub::new();
        let q = observed_queue(&hub);
        let mut h = q.register();
        for k in 0..100u64 {
            h.insert(k, k);
        }
        while h.delete_min().is_some() {}
        drop(h);
        let snap = hub.metrics().snapshot();
        let ops = snap
            .counter("mq_ops_total", &[("queue", "q0")])
            .expect("ops counter registered");
        assert!(ops >= 200, "100 inserts + 100 removals: {ops}");
        let insert_ns = snap
            .histogram("mq_op_ns", &[("op", "insert"), ("queue", "q0")])
            .expect("insert histogram registered");
        assert_eq!(insert_ns.count(), 100, "stride 1 samples every insert");
        let del_ns = snap
            .histogram("mq_op_ns", &[("op", "delete_min"), ("queue", "q0")])
            .expect("delete histogram registered");
        assert!(del_ns.count() >= 100, "failed removals are timed too");
    }

    #[test]
    fn resizes_record_epoch_stamped_events() {
        let hub = ObsHub::new();
        let q = observed_queue(&hub);
        assert!(q.resize_active(8));
        assert!(q.resize_active(2));
        let events = hub.recorder().events();
        let resizes: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::Resize)
            .collect();
        assert_eq!(resizes.len(), 2);
        assert_eq!(resizes[0].fields, [1, 2, 8], "epoch 1: 2 -> 8 lanes");
        assert_eq!(resizes[1].fields, [2, 8, 2], "epoch 2: 8 -> 2 lanes");
        assert!(resizes.iter().all(|e| e.label == "q0"));
        assert_eq!(
            q.topology().resize_epoch,
            2,
            "recorded epochs match the lane table"
        );
        let snap = hub.metrics().snapshot();
        assert_eq!(
            snap.counter("mq_resizes_total", &[("queue", "q0")]),
            Some(2)
        );
    }

    #[test]
    fn unobserved_queues_are_untouched() {
        let q = MultiQueue::<u64>::new(MultiQueueConfig::with_queues(4).with_seed(1));
        assert!(q.obs().is_none());
        let mut h = q.register();
        h.insert(1, 1);
        assert_eq!(h.delete_min(), Some((1, 1)));
    }
}
