//! The handle-based session API shared by the MultiQueue and the baseline
//! implementations.
//!
//! The paper's (1 + β) MultiQueue is defined in terms of *threads*: each
//! thread owns private randomness and (in engineering refinements) lane
//! affinity and operation buffers. The API mirrors that structure with an
//! explicit two-level contract:
//!
//! * [`SharedPq`] is the thread-safe queue itself. The only way to operate on
//!   it is to [`register`](SharedPq::register) a session, which returns a
//!   handle.
//! * [`PqHandle`] is an owned, `&mut self` session object carrying all
//!   operation-local state — the per-handle RNG stream, sticky-lane choice,
//!   batch buffers, and instrumentation logs — so the shared structure's hot
//!   path never consults thread-local storage.
//!
//! Handles are cheap to create and [`Send`], so the idiomatic pattern is one
//! handle per worker thread:
//!
//! ```
//! use choice_pq::{MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
//!
//! let queue = MultiQueue::<u64>::new(MultiQueueConfig::for_threads(2));
//! std::thread::scope(|scope| {
//!     for t in 0..2u64 {
//!         let queue = &queue;
//!         scope.spawn(move || {
//!             let mut handle = queue.register();
//!             handle.insert(10 * t, t);
//!             handle.delete_min();
//!         });
//!     }
//! });
//! ```
//!
//! For registries that must hold heterogeneous queues behind one pointer,
//! [`DynSharedPq`] provides the type-erased form (`Arc<dyn DynSharedPq<V>>`),
//! which itself implements [`SharedPq`] with boxed handles.

use rank_stats::inversion::TimestampedRemoval;

/// The priority key type: smaller keys are higher priority.
pub type Key = u64;

/// The one reserved key value: `Key::MAX` doubles as the internal empty-lane
/// sentinel, so it cannot be stored. [`check_key`] rejects it at insert.
pub const RESERVED_KEY: Key = Key::MAX;

/// Validates a key on the insert path.
///
/// # Panics
///
/// Panics if `key == Key::MAX` ([`RESERVED_KEY`]): that value is reserved as
/// the internal "empty lane" sentinel, and storing it would make a legitimate
/// element indistinguishable from an empty lane during the unsynchronised
/// peeks of the (1 + β) removal rule.
#[inline]
#[track_caller]
pub fn check_key(key: Key) {
    assert!(
        key != RESERVED_KEY,
        "key u64::MAX is reserved as the empty-lane sentinel and cannot be inserted"
    );
}

/// Per-handle operation counters, returned by [`PqHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HandleStats {
    /// Number of elements inserted through this handle (buffered inserts
    /// count immediately, before they are flushed).
    pub inserts: u64,
    /// Number of successful `delete_min` calls.
    pub removals: u64,
    /// Number of `delete_min` calls that found the structure (apparently)
    /// empty.
    pub failed_removals: u64,
    /// Subset of [`failed_removals`](HandleStats::failed_removals) where the
    /// structure was observed **quiescently empty** — the element count read
    /// as zero, or an exhaustive locked scan found nothing — as opposed to a
    /// removal lost to contention races. Schedulers use this to tell "no work
    /// exists right now" (back off, consult termination) apart from "work
    /// exists but this session lost races" (retry immediately), which
    /// [`contended_retries`](HandleStats::contended_retries) accounts.
    pub empty_polls: u64,
    /// Internal retry-loop iterations lost to contention or peek/lock races,
    /// on **both** the removal and the insert side. Removal side: a sampled
    /// lane's exclusive borrow was held, every sampled top looked empty (or
    /// mid-drain) while the structure was not, or a lane emptied between the
    /// unsynchronised peek and the borrow. Insert side: a failed borrow
    /// acquisition **and** a revalidation failure after a successful one (the
    /// lane was retired under foot) each count one retry — the batch path's
    /// accounting, now shared by `insert` — including the acquisition failure
    /// that diverts an insert onto the wait-free side-buffer (the publish
    /// still succeeds; the counter records that the direct path was
    /// contended). Always `0` for exact centralized structures, which block
    /// instead of retrying. Retries are *not* operations and do not count
    /// towards [`operations`](HandleStats::operations).
    pub contended_retries: u64,
    /// Operations refused by an *enclosing* admission layer (quota, rate or
    /// lifecycle shedding in a service/registry wrapper) before they reached
    /// the queue. Queues themselves never increment this — a handle's own
    /// counter is always `0` — but it rides in `HandleStats` so per-tenant
    /// aggregates carry attempted-but-shed work through the same
    /// [`merge`](HandleStats::merge) path as everything else. Refusals are
    /// not queue operations and do not count towards
    /// [`operations`](HandleStats::operations).
    pub refusals: u64,
}

impl HandleStats {
    /// Total operations issued through the handle (retries and refusals
    /// excluded).
    pub fn operations(&self) -> u64 {
        self.inserts + self.removals + self.failed_removals
    }

    /// Accumulates another handle's counters into this one.
    ///
    /// Handles count per session; anything that reports across sessions — a
    /// scheduler pool, a server aggregating live connections — folds the
    /// per-handle values together with this. Addition is saturating so a
    /// fold over pathological counters degrades to a pinned value instead
    /// of a panic in debug builds.
    pub fn merge(&mut self, other: &HandleStats) {
        self.inserts = self.inserts.saturating_add(other.inserts);
        self.removals = self.removals.saturating_add(other.removals);
        self.failed_removals = self.failed_removals.saturating_add(other.failed_removals);
        self.empty_polls = self.empty_polls.saturating_add(other.empty_polls);
        self.contended_retries = self
            .contended_retries
            .saturating_add(other.contended_retries);
        self.refusals = self.refusals.saturating_add(other.refusals);
    }
}

/// A snapshot of a queue's internal layout, returned by
/// [`SharedPq::topology`].
///
/// For the elastic MultiQueue this reports the live lane table (active
/// prefix, capacity, shard count, resize history); centralized structures
/// report the trivial [`QueueTopology::centralized`] shape. Diagnostic, not
/// linearizable: an elastic queue may resize between the load of the lane
/// table and the loads of the event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueTopology {
    /// Currently active lanes (the prefix of the allocated lane table).
    pub active_lanes: usize,
    /// Allocated lane capacity (the ceiling of `active_lanes`).
    pub max_lanes: usize,
    /// Insert shard count the active lanes are partitioned into.
    pub shards: usize,
    /// Completed grow events since construction.
    pub grows: u64,
    /// Completed shrink events since construction.
    pub shrinks: u64,
    /// The lane-table resize epoch at snapshot time (incremented by every
    /// completed grow or shrink), letting external observers correlate this
    /// snapshot with epoch-stamped flight-recorder resize events. Reads from
    /// the same packed lane-table word as `active_lanes`, so the pair is
    /// mutually consistent even mid-resize.
    pub resize_epoch: u64,
}

impl QueueTopology {
    /// The shape of a centralized (single-structure) queue: one permanent
    /// lane, one shard, no resize history. The default for every backend
    /// without a lane table.
    pub fn centralized() -> Self {
        Self {
            active_lanes: 1,
            max_lanes: 1,
            shards: 1,
            grows: 0,
            shrinks: 0,
            resize_epoch: 0,
        }
    }

    /// Total completed resizes (grows plus shrinks).
    pub fn resize_events(&self) -> u64 {
        self.grows + self.shrinks
    }
}

/// An owned, single-session view of a [`SharedPq`].
///
/// All methods take `&mut self`: a handle is owned by exactly one logical
/// thread of execution and carries that session's private state (RNG, lane
/// affinity, buffers, logs). The underlying queue handles cross-handle
/// synchronisation; handles never need external locking.
///
/// # Buffering
///
/// A handle configured with an insert batch may hold elements privately;
/// those elements are invisible to other handles until flushed. [`flush`]
/// publishes them immediately, a `delete_min` on the same handle flushes
/// first (a session always observes its own inserts), and dropping the
/// handle flushes — elements are never lost.
///
/// [`flush`]: PqHandle::flush
pub trait PqHandle<V>: Send {
    /// Inserts an entry.
    ///
    /// # Panics
    ///
    /// Panics if `key == Key::MAX` (see [`check_key`]).
    fn insert(&mut self, key: Key, value: V);

    /// Removes an entry with a small key.
    ///
    /// For *exact* implementations this is the global minimum; for *relaxed*
    /// implementations (the point of the paper) it is an element whose rank
    /// among all present elements is small in expectation. Returns `None`
    /// when the structure is observed empty; because of concurrency this is a
    /// best-effort emptiness check, and callers that need a linearizable
    /// emptiness test should quiesce first.
    fn delete_min(&mut self) -> Option<(Key, V)>;

    /// Removes up to `max` small-keyed entries in one batched operation,
    /// appending them to `out` and returning how many were appended.
    ///
    /// The default implementation loops [`delete_min`](PqHandle::delete_min)
    /// `max` times, which is correct for every queue; implementations with a
    /// cheaper bulk path (the MultiQueue drains one lane under a single lock)
    /// override it. A batch may legitimately return fewer than `max` entries
    /// while the structure is non-empty — batching trades exhaustiveness for
    /// amortised synchronisation — but a non-empty structure always yields at
    /// least one entry.
    ///
    /// Statistics: a batch that returns `0` entries counts as one failed
    /// removal in [`stats`](PqHandle::stats). Because the default
    /// implementation detects the end of a partial batch by a `delete_min`
    /// that comes back empty, it *also* records one failed removal when a
    /// non-empty batch stops early at an exhausted structure; bulk overrides
    /// (the MultiQueue) stop at the lane boundary instead and record none.
    /// Compare failed-removal counts across queue types accordingly.
    ///
    /// `out` is caller-owned and only appended to, so callers can reuse one
    /// buffer across calls.
    fn delete_min_batch_into(&mut self, max: usize, out: &mut Vec<(Key, V)>) -> usize {
        let before = out.len();
        for _ in 0..max {
            match self.delete_min() {
                Some(entry) => out.push(entry),
                None => break,
            }
        }
        out.len() - before
    }

    /// Publishes any privately buffered elements to the shared structure.
    ///
    /// A no-op for handles without batch buffers (the default).
    fn flush(&mut self) {}

    /// This session's operation counters.
    fn stats(&self) -> HandleStats;

    /// Drains the rank-instrumentation log collected so far (timestamped
    /// removals in the Section 5 methodology). Empty unless the handle was
    /// registered with an instrumenting policy.
    fn take_log(&mut self) -> Vec<TimestampedRemoval> {
        Vec::new()
    }
}

impl<V, H: PqHandle<V> + ?Sized> PqHandle<V> for Box<H> {
    fn insert(&mut self, key: Key, value: V) {
        (**self).insert(key, value);
    }
    fn delete_min(&mut self) -> Option<(Key, V)> {
        (**self).delete_min()
    }
    fn delete_min_batch_into(&mut self, max: usize, out: &mut Vec<(Key, V)>) -> usize {
        (**self).delete_min_batch_into(max, out)
    }
    fn flush(&mut self) {
        (**self).flush();
    }
    fn stats(&self) -> HandleStats {
        (**self).stats()
    }
    fn take_log(&mut self) -> Vec<TimestampedRemoval> {
        (**self).take_log()
    }
}

/// A thread-safe (relaxed or exact) min-priority queue operated through
/// registered session handles.
///
/// This is the interface the parallel Dijkstra application and the benchmark
/// harness program against; every structure the paper compares (MultiQueue
/// variants, the skiplist queue, the k-LSM-style queue, the coarse-locked
/// heap) implements it.
pub trait SharedPq<V>: Send + Sync {
    /// The session handle type; borrows the queue, so it is naturally used
    /// with scoped threads (or from behind an `Arc` kept alive by the
    /// caller).
    type Handle<'q>: PqHandle<V>
    where
        Self: 'q;

    /// Opens a new session on this queue.
    ///
    /// Registration is cheap (an atomic id allocation plus RNG seeding where
    /// applicable) but not free; callers should register once per worker, not
    /// once per operation.
    ///
    /// # Example
    ///
    /// ```
    /// use choice_pq::{MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
    ///
    /// let queue = MultiQueue::<u32>::new(MultiQueueConfig::for_threads(2));
    /// // One session per logical worker; all operations go through it.
    /// let mut session = queue.register();
    /// session.insert(7, 70);
    /// assert_eq!(session.delete_min(), Some((7, 70)));
    /// assert_eq!(session.stats().removals, 1);
    /// ```
    fn register(&self) -> Self::Handle<'_>;

    /// Opens a new session with an explicit per-session [`HandlePolicy`].
    ///
    /// The policy knobs (sticky lanes, insert batching, instrumentation) are
    /// MultiQueue refinements; structures without the corresponding machinery
    /// accept any policy and ignore the knobs that do not apply, so generic
    /// consumers (the scheduler, the bench harness) can plumb one policy
    /// through every backend. The default implementation ignores the policy
    /// entirely; the MultiQueue overrides it to honour all knobs.
    ///
    /// [`HandlePolicy`]: crate::handle::HandlePolicy
    fn register_policy(&self, policy: crate::handle::HandlePolicy) -> Self::Handle<'_> {
        let _ = policy;
        self.register()
    }

    /// An approximate element count (exact when the structure is quiescent).
    ///
    /// Elements sitting in unflushed handle buffers are *not* counted.
    fn approx_len(&self) -> usize;

    /// Whether the structure appears empty (same caveats as
    /// [`approx_len`](SharedPq::approx_len)).
    fn is_empty(&self) -> bool {
        self.approx_len() == 0
    }

    /// A snapshot of the structure's internal layout (lane table, shards,
    /// resize history). The default reports the trivial
    /// [`QueueTopology::centralized`] shape; the MultiQueue overrides it
    /// with its live lane table.
    fn topology(&self) -> QueueTopology {
        QueueTopology::centralized()
    }

    /// A short human-readable name used in benchmark tables.
    fn name(&self) -> String;
}

/// Object-safe form of [`SharedPq`] for registries holding heterogeneous
/// queues behind one pointer type (`Arc<dyn DynSharedPq<V>>`).
///
/// Every `SharedPq` automatically implements it, and `dyn DynSharedPq<V>`
/// itself implements [`SharedPq`] (with boxed handles), so generic consumers
/// like `parallel_sssp` accept both concrete and erased queues.
pub trait DynSharedPq<V: 'static>: Send + Sync {
    /// Opens a new boxed session on this queue.
    fn register_dyn(&self) -> Box<dyn PqHandle<V> + '_>;

    /// Opens a new boxed session with an explicit [`HandlePolicy`] (see
    /// [`SharedPq::register_policy`]; ignored by structures without
    /// per-session machinery).
    ///
    /// [`HandlePolicy`]: crate::handle::HandlePolicy
    fn register_policy_dyn(&self, policy: crate::handle::HandlePolicy)
        -> Box<dyn PqHandle<V> + '_>;

    /// See [`SharedPq::approx_len`]. (The `_dyn` suffix keeps concrete queue
    /// types unambiguous when both traits are in scope; on an erased queue,
    /// prefer the [`SharedPq`] methods, which `dyn DynSharedPq` implements.)
    fn approx_len_dyn(&self) -> usize;

    /// See [`SharedPq::is_empty`].
    fn is_empty_dyn(&self) -> bool;

    /// See [`SharedPq::topology`].
    fn topology_dyn(&self) -> QueueTopology;

    /// See [`SharedPq::name`].
    fn name_dyn(&self) -> String;
}

impl<V: 'static, Q: SharedPq<V>> DynSharedPq<V> for Q {
    fn register_dyn(&self) -> Box<dyn PqHandle<V> + '_> {
        Box::new(self.register())
    }
    fn register_policy_dyn(
        &self,
        policy: crate::handle::HandlePolicy,
    ) -> Box<dyn PqHandle<V> + '_> {
        Box::new(self.register_policy(policy))
    }
    fn approx_len_dyn(&self) -> usize {
        SharedPq::approx_len(self)
    }
    fn is_empty_dyn(&self) -> bool {
        SharedPq::is_empty(self)
    }
    fn topology_dyn(&self) -> QueueTopology {
        SharedPq::topology(self)
    }
    fn name_dyn(&self) -> String {
        SharedPq::name(self)
    }
}

impl<V: 'static> SharedPq<V> for dyn DynSharedPq<V> {
    type Handle<'q> = Box<dyn PqHandle<V> + 'q>;

    fn register(&self) -> Self::Handle<'_> {
        self.register_dyn()
    }
    fn register_policy(&self, policy: crate::handle::HandlePolicy) -> Self::Handle<'_> {
        self.register_policy_dyn(policy)
    }
    fn approx_len(&self) -> usize {
        self.approx_len_dyn()
    }
    fn is_empty(&self) -> bool {
        self.is_empty_dyn()
    }
    fn topology(&self) -> QueueTopology {
        self.topology_dyn()
    }
    fn name(&self) -> String {
        self.name_dyn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A trivially synchronised reference implementation used to check the
    /// trait contracts and the dyn-erasure layer.
    struct Locked(std::sync::Mutex<Vec<(Key, u64)>>);

    /// Borrowed session over [`Locked`]; counts its own operations.
    struct LockedHandle<'q> {
        queue: &'q Locked,
        stats: HandleStats,
    }

    impl Locked {
        fn new() -> Self {
            Self(std::sync::Mutex::new(Vec::new()))
        }
    }

    impl SharedPq<u64> for Locked {
        type Handle<'q> = LockedHandle<'q>;
        fn register(&self) -> LockedHandle<'_> {
            LockedHandle {
                queue: self,
                stats: HandleStats::default(),
            }
        }
        fn approx_len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn name(&self) -> String {
            "locked-vec".to_string()
        }
    }

    impl PqHandle<u64> for LockedHandle<'_> {
        fn insert(&mut self, key: Key, value: u64) {
            check_key(key);
            self.stats.inserts += 1;
            self.queue.0.lock().unwrap().push((key, value));
        }
        fn delete_min(&mut self) -> Option<(Key, u64)> {
            let mut items = self.queue.0.lock().unwrap();
            let idx = items
                .iter()
                .enumerate()
                .min_by_key(|(_, (k, _))| *k)
                .map(|(i, _)| i);
            match idx {
                Some(i) => {
                    self.stats.removals += 1;
                    Some(items.swap_remove(i))
                }
                None => {
                    // A locked scan that finds nothing is a quiescent-empty
                    // observation, not a lost race.
                    self.stats.failed_removals += 1;
                    self.stats.empty_polls += 1;
                    None
                }
            }
        }
        fn stats(&self) -> HandleStats {
            self.stats
        }
    }

    #[test]
    fn register_insert_delete_roundtrip() {
        let q = Locked::new();
        let mut h = q.register();
        assert!(q.is_empty());
        h.insert(3, 30);
        h.insert(1, 10);
        assert_eq!(q.approx_len(), 2);
        assert_eq!(h.delete_min(), Some((1, 10)));
        assert_eq!(h.delete_min(), Some((3, 30)));
        assert_eq!(h.delete_min(), None);
        assert_eq!(
            h.stats(),
            HandleStats {
                inserts: 2,
                removals: 2,
                failed_removals: 1,
                empty_polls: 1,
                contended_retries: 0,
                refusals: 0,
            }
        );
        assert_eq!(h.stats().operations(), 5, "retries are not operations");
        assert!(h.take_log().is_empty(), "no instrumentation by default");
    }

    #[test]
    fn register_policy_defaults_to_plain_register() {
        let q = Locked::new();
        // `Locked` has no per-session machinery; the policy is ignored but a
        // working session still comes back.
        let mut h = q.register_policy(crate::handle::HandlePolicy::instrumented());
        h.insert(1, 10);
        assert_eq!(h.delete_min(), Some((1, 10)));
        // Through the erased form too.
        let e: &dyn DynSharedPq<u64> = &q;
        let mut h = e.register_policy_dyn(crate::handle::HandlePolicy::default());
        assert_eq!(h.delete_min(), None);
        assert_eq!(h.stats().empty_polls, 1);
    }

    #[test]
    fn default_batch_impl_loops_delete_min() {
        let q = Locked::new();
        let mut h = q.register();
        for k in [4u64, 2, 9, 1] {
            h.insert(k, k * 10);
        }
        let mut out = Vec::new();
        // The default implementation keeps popping across the whole structure.
        assert_eq!(h.delete_min_batch_into(3, &mut out), 3);
        assert_eq!(out, vec![(1, 10), (2, 20), (4, 40)]);
        // Reuses the same buffer, appending.
        assert_eq!(h.delete_min_batch_into(8, &mut out), 1);
        assert_eq!(out.len(), 4);
        assert_eq!(h.stats().removals, 4);
        // Batch of zero touches nothing.
        assert_eq!(h.delete_min_batch_into(0, &mut out), 0);
    }

    #[test]
    fn two_handles_share_one_queue() {
        let q = Locked::new();
        let mut a = q.register();
        let mut b = q.register();
        a.insert(5, 50);
        assert_eq!(b.delete_min(), Some((5, 50)));
    }

    #[test]
    #[should_panic(expected = "reserved as the empty-lane sentinel")]
    fn reserved_key_is_rejected() {
        let q = Locked::new();
        q.register().insert(Key::MAX, 0);
    }

    #[test]
    fn dyn_erasure_round_trips() {
        let q: Arc<dyn DynSharedPq<u64>> = Arc::new(Locked::new());
        let mut h = q.register_dyn();
        h.insert(2, 20);
        h.insert(7, 70);
        assert_eq!(q.approx_len(), 2);
        assert_eq!(h.delete_min(), Some((2, 20)));
        assert_eq!(q.name(), "locked-vec");
        // The erased queue is itself a SharedPq, so generic consumers work.
        fn generic_drain<Q: SharedPq<u64> + ?Sized>(q: &Q) -> usize {
            let mut h = q.register();
            let mut n = 0;
            while h.delete_min().is_some() {
                n += 1;
            }
            n
        }
        assert_eq!(generic_drain(&*q), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn boxed_handles_forward_everything() {
        let q = Locked::new();
        let mut h: Box<dyn PqHandle<u64> + '_> = Box::new(q.register());
        h.insert(9, 90);
        h.flush();
        assert_eq!(h.delete_min(), Some((9, 90)));
        h.insert(3, 30);
        let mut out = Vec::new();
        assert_eq!(h.delete_min_batch_into(4, &mut out), 1);
        assert_eq!(out, vec![(3, 30)]);
        assert_eq!(h.stats().inserts, 2);
        assert!(h.take_log().is_empty());
    }

    #[test]
    fn stats_merge_accumulates_every_counter() {
        let mut total = HandleStats::default();
        let a = HandleStats {
            inserts: 3,
            removals: 2,
            failed_removals: 1,
            empty_polls: 1,
            contended_retries: 7,
            refusals: 4,
        };
        let b = HandleStats {
            inserts: 10,
            removals: 20,
            failed_removals: 30,
            empty_polls: 25,
            contended_retries: 0,
            refusals: 40,
        };
        total.merge(&a);
        total.merge(&b);
        assert_eq!(
            total,
            HandleStats {
                inserts: 13,
                removals: 22,
                failed_removals: 31,
                empty_polls: 26,
                contended_retries: 7,
                refusals: 44,
            }
        );
        // Merging an empty stats value is the identity.
        let before = total;
        total.merge(&HandleStats::default());
        assert_eq!(total, before);
    }

    /// Pins the intended overflow behaviour of [`HandleStats::merge`]:
    /// **saturating**, per field, never wrapping and never panicking. A
    /// long-lived server folds per-session counters forever; a pathological
    /// (or adversarial) session must degrade the aggregate to a pinned
    /// `u64::MAX`, not wrap it back to a small number or abort a debug
    /// build.
    #[test]
    fn stats_merge_saturates_every_field_independently() {
        let maxed = HandleStats {
            inserts: u64::MAX,
            removals: u64::MAX,
            failed_removals: u64::MAX,
            empty_polls: u64::MAX,
            contended_retries: u64::MAX,
            refusals: u64::MAX,
        };
        let small = HandleStats {
            inserts: 1,
            removals: 2,
            failed_removals: 3,
            empty_polls: 4,
            contended_retries: 5,
            refusals: 6,
        };
        // MAX + anything pins at MAX (both merge directions).
        let mut a = maxed;
        a.merge(&small);
        assert_eq!(a, maxed, "saturation must pin, not wrap");
        let mut b = small;
        b.merge(&maxed);
        assert_eq!(b, maxed);
        // Each field saturates independently: overflow one, the others add
        // normally.
        for field in 0..6usize {
            let mut near = HandleStats::default();
            fn pick_field(field: usize) -> impl Fn(&mut HandleStats) -> &mut u64 {
                move |s| match field {
                    0 => &mut s.inserts,
                    1 => &mut s.removals,
                    2 => &mut s.failed_removals,
                    3 => &mut s.empty_polls,
                    4 => &mut s.contended_retries,
                    _ => &mut s.refusals,
                }
            }
            let pick = pick_field(field);
            *pick(&mut near) = u64::MAX - 1;
            near.merge(&small);
            assert_eq!(*pick(&mut near), u64::MAX, "field {field} must saturate");
            let mut expected = small;
            *pick(&mut expected) = u64::MAX;
            assert_eq!(near, expected, "field {field}: the others add normally");
        }
        // Saturation composes: once pinned, further merges stay pinned.
        let mut pinned = maxed;
        pinned.merge(&small);
        pinned.merge(&small);
        assert_eq!(pinned, maxed);
    }

    #[test]
    fn default_topology_is_the_centralized_shape() {
        let q = Locked::new();
        let shape = q.topology();
        assert_eq!(shape, QueueTopology::centralized());
        assert_eq!(shape.active_lanes, 1);
        assert_eq!(shape.max_lanes, 1);
        assert_eq!(shape.shards, 1);
        assert_eq!(shape.resize_events(), 0);
        // Through the erased form too.
        let e: &dyn DynSharedPq<u64> = &q;
        assert_eq!(e.topology_dyn(), QueueTopology::centralized());
        assert_eq!(SharedPq::topology(e), QueueTopology::centralized());
    }

    #[test]
    fn handles_are_send() {
        fn assert_send<T: Send>(_: T) {}
        let q = Locked::new();
        assert_send(q.register());
    }
}
