//! The concurrent priority queue interface shared by the MultiQueue and the
//! baseline implementations.

/// The priority key type: smaller keys are higher priority.
pub type Key = u64;

/// A thread-safe (relaxed or exact) min-priority queue.
///
/// All methods take `&self`; implementations handle their own synchronisation
/// and per-thread randomness. This is the interface the parallel Dijkstra
/// application and the benchmark harness program against, so every structure
/// the paper compares (MultiQueue variants, the skiplist queue, the k-LSM-style
/// queue, the coarse-locked heap) implements it.
pub trait ConcurrentPriorityQueue<V>: Send + Sync {
    /// Inserts an entry.
    fn insert(&self, key: Key, value: V);

    /// Removes an entry with a small key.
    ///
    /// For *exact* implementations this is the global minimum; for *relaxed*
    /// implementations (the point of the paper) it is an element whose rank
    /// among all present elements is small in expectation. Returns `None` when
    /// the structure is observed empty; because of concurrency this is a
    /// best-effort emptiness check, and callers that need a linearizable
    /// emptiness test should quiesce first.
    fn delete_min(&self) -> Option<(Key, V)>;

    /// An approximate element count (exact when the structure is quiescent).
    fn approx_len(&self) -> usize;

    /// Whether the structure appears empty.
    fn is_empty(&self) -> bool {
        self.approx_len() == 0
    }

    /// A short human-readable name used in benchmark tables.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially synchronised reference implementation used to check the
    /// trait's default methods and object safety.
    struct Locked(std::sync::Mutex<Vec<(Key, u64)>>);

    impl ConcurrentPriorityQueue<u64> for Locked {
        fn insert(&self, key: Key, value: u64) {
            self.0.lock().unwrap().push((key, value));
        }
        fn delete_min(&self) -> Option<(Key, u64)> {
            let mut items = self.0.lock().unwrap();
            let idx = items
                .iter()
                .enumerate()
                .min_by_key(|(_, (k, _))| *k)
                .map(|(i, _)| i)?;
            Some(items.swap_remove(idx))
        }
        fn approx_len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
        fn name(&self) -> String {
            "locked-vec".to_string()
        }
    }

    #[test]
    fn default_is_empty_uses_len() {
        let q = Locked(std::sync::Mutex::new(Vec::new()));
        assert!(q.is_empty());
        q.insert(3, 30);
        assert!(!q.is_empty());
        assert_eq!(q.delete_min(), Some((3, 30)));
        assert!(q.is_empty());
    }

    #[test]
    fn trait_is_object_safe() {
        let q: Box<dyn ConcurrentPriorityQueue<u64>> =
            Box::new(Locked(std::sync::Mutex::new(Vec::new())));
        q.insert(1, 1);
        q.insert(2, 2);
        assert_eq!(q.approx_len(), 2);
        assert_eq!(q.delete_min(), Some((1, 1)));
        assert_eq!(q.name(), "locked-vec");
    }
}
