//! The concurrent (1 + β) MultiQueue — sharded and elastic.
//!
//! # Lanes, shards and the active prefix
//!
//! The queue allocates `config.queues` lanes up front but only the first
//! `active` of them participate in normal operation. The pair
//! `(epoch, active)` is packed into one `AtomicU64` (the **lane table**), so
//! every reader observes a consistent resize state from a single load — a
//! concurrent `delete_min` can never see a torn resize. The active lanes are
//! partitioned into `config.shards` *insert shards* by stride (shard `s`
//! owns lanes `s, s + shards, …`): a lane's shard never changes, and any
//! active count `≥ shards` keeps every shard non-empty.
//!
//! Handles publish inserts into their own shard (sticky-lane generalised to
//! sticky-shard) while `delete_min` samples across **all** active lanes, so
//! the paper's rank argument is unchanged — sharding only narrows where a
//! given session's inserts land, which buys cache locality exactly like
//! sticky lanes did, one level up.
//!
//! # The elastic resize protocol
//!
//! Resizes (cooperative, triggered by an [`ElasticPolicy`] controller or by
//! [`MultiQueue::resize_active`]) are serialised by a resize mutex and obey
//! one invariant: **an element can only ever sit in a lane that was active
//! when it was pushed, and retiring a lane moves its contents back into the
//! active prefix before the resize completes.** Concretely:
//!
//! * *Grow* bumps the lane table; newly activated lanes start empty (they
//!   were drained when retired, or never used).
//! * *Shrink* first bumps the lane table (epoch + 1, smaller active count),
//!   then locks each retired lane in turn, drains it with the same
//!   `drain_heap` core the public removal paths use, and re-publishes the
//!   elements into the surviving prefix.
//! * *Insert* validates its target lane **after** acquiring the exclusive
//!   lane borrow: if the lane table no longer covers the lane, the insert
//!   releases and retries elsewhere. Because the retirement drain needs
//!   that same borrow and runs strictly after the table bump, every direct
//!   push either happens before the drain (and is moved) or observes the
//!   retirement (and goes elsewhere). The *wait-free* side-buffer path
//!   (taken when the borrow is held) registers itself in the lane's
//!   publisher count before re-validating against the table, and the
//!   retirement drain waits for that count to reach zero before its final
//!   fold — the Dekker-style pairing in DESIGN.md §13.4 — so side-published
//!   elements are moved too: key conservation by construction, no epoch
//!   re-validation on the read side needed.
//! * Lanes below [`MultiQueueConfig::min_active_lanes`] are never retired,
//!   so the blocking fallbacks (retry budget exhausted) target those and
//!   need no validation loop.
//!
//! See `DESIGN.md` §7 for the full argument.
//!
//! [`ElasticPolicy`]: crate::config::ElasticPolicy

use crate::sync::{AtomicU64, AtomicUsize, Ordering};

use crate::sync::Mutex;
use crossbeam_utils::CachePadded;

use rank_stats::inversion::TimestampedRemoval;
use rank_stats::rng::{RandomSource, SplitMix64, Xoshiro256};
use seq_pq::{BinaryHeap, SequentialPriorityQueue};

use crate::config::MultiQueueConfig;
use crate::handle::{HandlePolicy, MqHandle};
use crate::lane::{Lane, EMPTY_TOP};
use crate::obs::QueueObs;
use crate::traits::{Key, QueueTopology, SharedPq};
use std::sync::Arc;

/// Low half of the packed lane table: the active lane count.
const ACTIVE_MASK: u64 = 0xFFFF_FFFF;

/// What one [`MultiQueue::drain_best_with`] call did, beyond the drained
/// elements themselves: the retry accounting the handle layer turns into
/// [`HandleStats`](crate::HandleStats) counters and the elastic controller
/// turns into resize decisions.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DrainOutcome {
    /// Number of elements appended to the caller's buffer.
    pub drained: usize,
    /// Retry-loop iterations lost to contention or peek/lock races (the
    /// total the handle layer reports; includes `sparse_retries`).
    pub contended_retries: u64,
    /// Subset of `contended_retries` where every *sampled* top looked empty
    /// while the structure was not — the over-provisioning signal the
    /// elastic controller shrinks on, as opposed to lost lock races (which
    /// it grows on).
    pub sparse_retries: u64,
    /// Whether a zero-element result came from a quiescent-empty observation
    /// (`len` read as zero — either up front, or corroborating an exhaustive
    /// steal scan that found every lane empty) rather than from `max == 0`.
    pub observed_empty: bool,
}

impl DrainOutcome {
    /// The `max == 0` no-op outcome.
    fn nothing() -> Self {
        Self {
            drained: 0,
            contended_retries: 0,
            sparse_retries: 0,
            observed_empty: false,
        }
    }
}

/// The elastic controller's mutable state (all touched off the lock-free hot
/// path only when [`MultiQueueConfig::elastic`] is set).
#[derive(Debug, Default)]
struct Elastic {
    /// Operations observed since the last controller decision.
    window_ops: AtomicU64,
    /// Try-lock failures (insert and delete side) in the current window.
    window_lock: AtomicU64,
    /// Sparse delete samples (all sampled tops empty, structure non-empty)
    /// in the current window.
    window_sparse: AtomicU64,
    /// Decision windows left to skip after the last resize (hysteresis).
    cooldown: AtomicU64,
}

/// The relaxed concurrent priority queue of the paper.
///
/// All operations go through registered session handles
/// ([`register`](SharedPq::register) /
/// [`register_with`](MultiQueue::register_with)); each handle owns a private
/// RNG stream seeded deterministically from the queue seed and the handle's
/// id, so runs are reproducible and the hot path performs no thread-local
/// lookups.
///
/// See the [crate-level documentation](crate) for the algorithm; see
/// [`MultiQueueConfig`] for sizing, the choice rule (β / d), sharding and
/// elasticity; see the [module documentation](self) for the resize
/// protocol.
///
/// # Example
///
/// ```
/// use choice_pq::{MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
///
/// // Four lanes, 4-choice deleteMin, batched removals.
/// let queue = MultiQueue::<&'static str>::new(MultiQueueConfig::with_queues(4).with_d(4));
/// let mut session = queue.register();
/// session.insert(2, "b");
/// session.insert(1, "a");
/// session.insert(3, "c");
/// // Drain a batch of up to 8 under a single lane lock.
/// let batch: Vec<_> = session.delete_min_batch(8).collect();
/// assert!(!batch.is_empty());
/// assert!(queue.approx_len() < 3);
/// ```
#[derive(Debug)]
pub struct MultiQueue<V> {
    lanes: Vec<CachePadded<Lane<V>>>,
    /// Packed `(epoch << 32) | active` lane table; a single load gives a
    /// consistent resize view. Written only under `resize_mutex`.
    lane_table: AtomicU64,
    /// Serialises resizes; held across the whole shrink drain, so a grow
    /// can never interleave with a retirement in progress.
    resize_mutex: Mutex<()>,
    /// Completed grow / shrink events (diagnostics + [`QueueTopology`]).
    grow_events: AtomicU64,
    shrink_events: AtomicU64,
    elastic: Elastic,
    len: AtomicUsize,
    /// Monotonic id source for registered handles.
    next_handle_id: AtomicU64,
    /// Coherent timestamp source for rank instrumentation (Section 5
    /// methodology); shared by every instrumented handle of this queue.
    clock: AtomicU64,
    /// Telemetry bundle, attached before the queue is shared
    /// ([`MultiQueue::attach_obs`]). `None` (the default) keeps the hot path
    /// telemetry-free apart from one branch.
    obs: Option<Arc<QueueObs>>,
    config: MultiQueueConfig,
}

impl<V> MultiQueue<V> {
    /// Creates an empty MultiQueue. An elastic configuration starts at its
    /// [`min_active_lanes`](MultiQueueConfig::min_active_lanes) floor; a
    /// static one starts (and stays) at full capacity.
    pub fn new(config: MultiQueueConfig) -> Self {
        assert!(
            config.shards <= config.queues,
            "shard count exceeds the lane capacity"
        );
        let lanes = (0..config.queues)
            .map(|_| CachePadded::new(Lane::new()))
            .collect();
        let initial_active = config.min_active_lanes() as u64;
        Self {
            lanes,
            lane_table: AtomicU64::new(initial_active),
            resize_mutex: Mutex::new(()),
            grow_events: AtomicU64::new(0),
            shrink_events: AtomicU64::new(0),
            elastic: Elastic::default(),
            len: AtomicUsize::new(0),
            next_handle_id: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            obs: None,
            config,
        }
    }

    /// Attaches a telemetry bundle. Must be called before the queue is
    /// shared (it takes `&mut self`); sessions registered afterwards also
    /// sample operation latency at the bundle's stride.
    pub fn attach_obs(&mut self, obs: Arc<QueueObs>) {
        self.obs = Some(obs);
    }

    /// The attached telemetry bundle, if any.
    pub fn obs(&self) -> Option<&Arc<QueueObs>> {
        self.obs.as_ref()
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &MultiQueueConfig {
        &self.config
    }

    /// Number of allocated internal lanes (the capacity `n`; see
    /// [`active_lanes`](MultiQueue::active_lanes) for the live count).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of currently active lanes (the prefix participating in
    /// inserts and sampled removals). Equal to [`lanes`](MultiQueue::lanes)
    /// for a static configuration.
    pub fn active_lanes(&self) -> usize {
        (self.lane_table.load(Ordering::Acquire) & ACTIVE_MASK) as usize
    }

    /// The resize epoch: incremented by every completed grow or shrink.
    pub fn resize_epoch(&self) -> u64 {
        self.lane_table.load(Ordering::Acquire) >> 32
    }

    /// Number of handles registered so far (never decreases; dropped handles
    /// do not return their id).
    pub fn registered_handles(&self) -> u64 {
        self.next_handle_id.load(Ordering::Relaxed)
    }

    /// The cached top key of every allocated lane (`None` for empty lanes);
    /// a diagnostic snapshot, not linearizable.
    pub fn lane_tops(&self) -> Vec<Option<Key>> {
        self.lanes
            .iter()
            .map(|l| {
                let t = l.load_top();
                if t == EMPTY_TOP {
                    None
                } else {
                    Some(t)
                }
            })
            .collect()
    }

    /// Per-lane element counts over every allocated lane (retired lanes read
    /// zero once their drain completed); acquires every lane's exclusive
    /// borrow in turn (folding any side-buffered inserts into the heap on
    /// the way), so only meaningful when the structure is quiescent (tests
    /// and diagnostics).
    pub fn lane_lengths(&self) -> Vec<usize> {
        self.lanes
            .iter()
            .map(|l| l.exclusive_blocking(false).len())
            .collect()
    }

    /// A zero-lock bound on the *lane rank* of `key`: one plus the number of
    /// active lanes whose cached top is strictly smaller. This is the live
    /// counterpart of the paper's rank error (each counted lane holds at
    /// least one element smaller than `key`, so the value lower-bounds the
    /// element rank while upper-bounding the count of lanes a perfect
    /// `delete_min` would have preferred — the quantity the (1 + β) analysis
    /// bounds at O(active lanes)).
    ///
    /// The probe reads the seqlock-stamped lane tops `delete_min` samples:
    /// one `Acquire` load of the lane table plus one stamped top sample per
    /// active lane, no lane borrows. Races bias the estimate
    /// *conservatively* for a just-removed `key`: a lane whose sample is
    /// refused (a drain-type section in progress) is skipped — its minimum
    /// may already be gone — while a stale-low settled top belongs to a
    /// not-yet-linearized removal (its element genuinely coexisted with the
    /// removal and counts), and a not-yet-published insert is absent from
    /// the estimate exactly as it was absent from the queue (DESIGN.md §12
    /// spells out the bias argument, §13 the stamp protocol).
    pub fn lane_rank_bound(&self, key: Key) -> u64 {
        let active = self.active_lanes().min(self.lanes.len());
        let mut better = 0u64;
        for lane in &self.lanes[..active] {
            let Some(top) = lane.sample_top() else {
                continue;
            };
            if top != EMPTY_TOP && top < key {
                better += 1;
            }
        }
        1 + better
    }

    /// Runs `f` while holding the exclusive (drain-type) borrow of lane
    /// `index` — inserts targeting the lane go wait-free through its
    /// side-buffer, drains skip it. Used by tests to inject the "stalled
    /// thread holding a lane" pathology discussed in Appendix C of the
    /// paper and check that other operations stay correct.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_lane_locked<R>(&self, index: usize, f: impl FnOnce() -> R) -> R {
        let _guard = self.lanes[index].exclusive_blocking(true);
        f()
    }

    /// Opens a session with an explicit [`HandlePolicy`].
    ///
    /// The handle's RNG stream is seeded deterministically from the queue
    /// seed and the allocated handle id, so a single-threaded run with the
    /// same seed, policies and registration order replays exactly.
    pub fn register_with(&self, policy: HandlePolicy) -> MqHandle<'_, V> {
        let id = self.next_handle_id.fetch_add(1, Ordering::Relaxed);
        MqHandle::new(self, id, self.handle_rng(id), policy)
    }

    /// The deterministic per-handle RNG: queue seed and handle id mixed
    /// through SplitMix64 into a full Xoshiro256 state.
    fn handle_rng(&self, id: u64) -> Xoshiro256 {
        let mut mixer = SplitMix64::seeded(
            self.config
                .seed
                .wrapping_add((id ^ 0xA5A5_5A5A_F00D_CAFE).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        Xoshiro256::seeded(mixer.next_u64())
    }

    /// Draws a coherent removal timestamp (instrumented handles).
    pub(crate) fn next_timestamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// A random lane of `shard` below `limit` (strided shard layout). With
    /// one shard this is a uniform draw over `[0, limit)`, bit-compatible
    /// with the pre-sharding engine's streams.
    pub(crate) fn stride_lane(&self, rng: &mut Xoshiro256, shard: usize, limit: usize) -> usize {
        let shards = self.config.shards;
        if shards == 1 {
            return rng.next_index(limit);
        }
        debug_assert!(shard < shards && shard < limit, "shard outside the table");
        let in_shard = (limit - shard).div_ceil(shards);
        shard + shards * rng.next_index(in_shard)
    }

    /// Resizes the active lane set to `target` (clamped to
    /// `[min_active_lanes, queues]`), draining retired lanes back into the
    /// surviving prefix on shrink. Returns whether the active count changed.
    ///
    /// Safe to call concurrently with any other operation (resizes are
    /// serialised internally); also the entry point tests use to force
    /// grow/shrink events. A no-op (returning `false`) when `target` clamps
    /// to the current count.
    pub fn resize_active(&self, target: usize) -> bool {
        let guard = self.resize_mutex.lock();
        self.resize_locked(&guard, target)
    }

    /// The resize body; the caller holds `resize_mutex`.
    fn resize_locked(&self, _guard: &crate::sync::MutexGuard<'_, ()>, target: usize) -> bool {
        let target = target.clamp(self.config.min_active_lanes(), self.lanes.len());
        let table = self.lane_table.load(Ordering::Acquire);
        let active = (table & ACTIVE_MASK) as usize;
        if target == active {
            return false;
        }
        let epoch = (table >> 32) + 1;
        // Publish the new table first: after this store no insert can commit
        // into a lane `>= target` (the direct path re-validates under the
        // exclusive borrow the drain below will need; the side path
        // registers in the lane's publisher count *before* re-validating,
        // and this `SeqCst` store pairs with that `SeqCst` registration so
        // the idle-wait below sees every publisher that missed the store —
        // the Dekker argument in DESIGN.md §13.4).
        self.lane_table
            .store((epoch << 32) | target as u64, Ordering::SeqCst);
        if target > active {
            self.grow_events.fetch_add(1, Ordering::Relaxed);
        } else {
            // Retire lanes [target, active): drain each one and re-publish
            // its elements into the surviving prefix. One lane borrow at a
            // time — never two — so the acquisition order cannot deadlock
            // against operations. `len` is untouched: the elements never
            // leave the structure.
            // The drain reuses the same `drain_heap` core as the public
            // removal paths — uninstrumented (`log: None`): moved elements
            // never leave the structure, so a shrink is invisible to the
            // rank methodology.
            let mut moved: Vec<(Key, V)> = Vec::new();
            for retired in target..active {
                let mut guard = self.lanes[retired].exclusive_blocking(true);
                // Wait out in-flight side publishers, then fold once more:
                // every registered publisher either saw the old table (its
                // push lands before the count returns to zero) or the new
                // one (it deregisters without pushing), so after this fold
                // the side-buffer stays empty for good.
                self.lanes[retired].wait_inserters_idle();
                guard.fold();
                self.drain_heap(&mut guard, usize::MAX, &mut moved, None);
            }
            // Spread the refugees across the surviving lanes in chunks, one
            // destination borrow at a time (never two lane borrows at once).
            // Order within a chunk is irrelevant — the destination heap
            // re-sorts — so draining off the tail is fine and allocation-free.
            if !moved.is_empty() {
                let chunk = moved.len().div_ceil(target);
                let mut dst = 0usize;
                while !moved.is_empty() {
                    let take = chunk.min(moved.len());
                    let mut guard = self.lanes[dst % target].exclusive_blocking(false);
                    for (key, value) in moved.drain(moved.len() - take..) {
                        guard.push(key, value);
                    }
                    dst += 1;
                }
            }
            self.shrink_events.fetch_add(1, Ordering::Relaxed);
        }
        // A fresh resize opens the hysteresis window.
        if let Some(policy) = &self.config.elastic {
            self.elastic
                .cooldown
                .store(u64::from(policy.cooldown_checks), Ordering::Relaxed);
        }
        if let Some(obs) = &self.obs {
            obs.on_resize(epoch, active, target);
        }
        true
    }

    /// Folds one operation's contention accounting into the controller
    /// window and runs a resize decision when the window closes. Called with
    /// **no lane locks held**. A no-op for static configurations.
    fn elastic_tick(&self, ops: u64, lock_retries: u64, sparse_retries: u64) {
        if let Some(obs) = &self.obs {
            obs.on_ops(ops, lock_retries, sparse_retries);
        }
        let Some(policy) = &self.config.elastic else {
            return;
        };
        if lock_retries > 0 {
            self.elastic
                .window_lock
                .fetch_add(lock_retries, Ordering::Relaxed);
        }
        if sparse_retries > 0 {
            self.elastic
                .window_sparse
                .fetch_add(sparse_retries, Ordering::Relaxed);
        }
        let seen = self.elastic.window_ops.fetch_add(ops, Ordering::Relaxed) + ops;
        if seen < policy.check_interval {
            return;
        }
        // Window closed: at most one thread becomes the controller (the
        // others keep operating; they will close a later window).
        let Some(guard) = self.resize_mutex.try_lock() else {
            return;
        };
        let window_ops = self.elastic.window_ops.swap(0, Ordering::Relaxed);
        if window_ops < policy.check_interval {
            // Another controller consumed this window between our counter
            // bump and the lock. Return the partial count we just stole so
            // the next window's rate denominator stays honest (its lock and
            // sparse increments are already recorded against it).
            self.elastic
                .window_ops
                .fetch_add(window_ops, Ordering::Relaxed);
            return;
        }
        let lock = self.elastic.window_lock.swap(0, Ordering::Relaxed);
        let sparse = self.elastic.window_sparse.swap(0, Ordering::Relaxed);
        let cooldown = self.elastic.cooldown.load(Ordering::Relaxed);
        if cooldown > 0 {
            self.elastic.cooldown.store(cooldown - 1, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.on_controller_tick(0, lock, sparse);
            }
            return;
        }
        let lock_rate = lock as f64 / window_ops as f64;
        let sparse_rate = sparse as f64 / window_ops as f64;
        let active = self.active_lanes();
        let mut decision = 0u64;
        if lock_rate > policy.grow_threshold && active < self.lanes.len() {
            // Contention collapse forming: double the active set.
            self.resize_locked(&guard, (active * 2).min(self.lanes.len()));
            decision = 1;
        } else if sparse_rate > policy.shrink_threshold
            && lock_rate < policy.grow_threshold * 0.5
            && active > self.config.min_active_lanes()
        {
            // Over-provisioned: sampled lanes keep coming up empty while
            // locks are uncontended. Halve the active set.
            self.resize_locked(&guard, active / 2);
            decision = 2;
        }
        if let Some(obs) = &self.obs {
            obs.on_controller_tick(decision, lock, sparse);
        }
    }

    /// The wait-free insert side path: registers as an in-flight publisher
    /// on lane `q`, re-validates `q` against the lane table (the `SeqCst`
    /// registration/table-store pairing with the shrink in `resize_locked`
    /// — DESIGN.md §13.4), credits `len`, pushes into the lane's MPSC
    /// side-buffer and deregisters. Returns `false` (keeping `value`) when
    /// the lane was retired, in which case nothing was published. The `len`
    /// credit lands *before* the push: an element can only be popped after
    /// a fold observed the push, so every `fetch_sub` is preceded by its
    /// matching credit — underflow-freedom by construction.
    fn side_publish_one(&self, q: usize, key: Key, value: &mut Option<V>) -> bool {
        self.lanes[q].register_inserter();
        if q >= (self.lane_table.load(Ordering::SeqCst) & ACTIVE_MASK) as usize {
            self.lanes[q].deregister_inserter();
            return false;
        }
        self.len.fetch_add(1, Ordering::Relaxed);
        self.lanes[q].side_push(key, value.take().expect("value not yet consumed"));
        self.lanes[q].deregister_inserter();
        true
    }

    /// Batch form of [`side_publish_one`](Self::side_publish_one): one
    /// register/validate/deregister envelope around the whole batch, with
    /// the full `len` credit up front (over-crediting ahead of visibility
    /// is safe; under-crediting behind it is the underflow bug).
    fn side_publish_batch(&self, q: usize, batch: &mut Vec<(Key, V)>) -> bool {
        self.lanes[q].register_inserter();
        if q >= (self.lane_table.load(Ordering::SeqCst) & ACTIVE_MASK) as usize {
            self.lanes[q].deregister_inserter();
            return false;
        }
        self.len.fetch_add(batch.len(), Ordering::Relaxed);
        for (key, value) in batch.drain(..) {
            self.lanes[q].side_push(key, value);
        }
        self.lanes[q].deregister_inserter();
        true
    }

    /// Inserts `(key, value)` into the handle's shard: the sticky `hint`
    /// first when present (and still active), then random shard lanes, then
    /// a permanently active floor lane once the retry budget is exhausted.
    /// A free lane takes the element directly under the exclusive borrow
    /// (re-validated against the lane table — module docs); a busy lane
    /// takes it wait-free through its side-buffer, so inserts never block
    /// behind a drainer. Returns the contended-retry count for
    /// [`HandleStats`](crate::HandleStats): every failed borrow acquisition
    /// *and* every post-acquisition revalidation failure counts (the batch
    /// path's semantics, now shared by both).
    pub(crate) fn insert_with(
        &self,
        rng: &mut Xoshiro256,
        shard: usize,
        hint: Option<usize>,
        key: Key,
        value: V,
    ) -> u64 {
        debug_assert!(key != EMPTY_TOP, "keys are validated at the handle layer");
        let mut lock_retries = 0u64;
        let mut value = Some(value);
        let (lane, fell_back) = 'published: {
            if let Some(q) = hint {
                // A sticky hint can go stale across a shrink; skip it then.
                if q < self.active_lanes() {
                    if let Some(mut guard) = self.lanes[q].try_exclusive(false) {
                        if q < self.active_lanes() {
                            guard.push(key, value.take().expect("value not yet consumed"));
                            self.len.fetch_add(1, Ordering::Relaxed);
                            break 'published (q, false);
                        }
                        // Retired while we raced for the borrow.
                        drop(guard);
                        lock_retries += 1;
                    } else {
                        // A drainer holds the lane: go wait-free.
                        lock_retries += 1;
                        if self.side_publish_one(q, key, &mut value) {
                            break 'published (q, false);
                        }
                    }
                }
            }
            for _ in 0..self.config.max_retries {
                let q = self.stride_lane(rng, shard, self.active_lanes());
                if let Some(mut guard) = self.lanes[q].try_exclusive(false) {
                    // Re-validate under the borrow: the lane may have been
                    // retired (and drained) while we raced for it.
                    if q < self.active_lanes() {
                        guard.push(key, value.take().expect("value not yet consumed"));
                        self.len.fetch_add(1, Ordering::Relaxed);
                        break 'published (q, false);
                    }
                    drop(guard);
                    lock_retries += 1;
                } else {
                    lock_retries += 1;
                    if self.side_publish_one(q, key, &mut value) {
                        break 'published (q, false);
                    }
                }
            }
            // Retry budget exhausted: target a floor lane, which is never
            // retired, so no validation loop — and the side path makes even
            // this arm wait-free (the old code blocked here).
            let q = self.stride_lane(rng, shard, self.config.min_active_lanes());
            if let Some(mut guard) = self.lanes[q].try_exclusive(false) {
                guard.push(key, value.take().expect("value not yet consumed"));
                self.len.fetch_add(1, Ordering::Relaxed);
            } else {
                assert!(
                    self.side_publish_one(q, key, &mut value),
                    "floor lanes are never retired"
                );
            }
            (q, true)
        };
        if let Some(obs) = &self.obs {
            if fell_back || lock_retries >= self.config.contention_event_threshold {
                obs.on_lane_contention(lane, lock_retries);
            }
        }
        self.elastic_tick(1, lock_retries, 0);
        lock_retries
    }

    /// Publishes a whole insert batch under a single lane borrow (the
    /// batched MultiQueue refinement: one random choice and one acquisition
    /// amortised over the batch, at a bounded rank-quality cost), falling
    /// back to the wait-free side-buffer when the lane is busy. The `len`
    /// credit lands under the exclusive borrow (direct path) or before the
    /// side pushes — never after publication, which is what let a racing
    /// drain `fetch_sub` below zero. Returns the contended-retry count.
    pub(crate) fn insert_batch_with(
        &self,
        rng: &mut Xoshiro256,
        shard: usize,
        hint: Option<usize>,
        batch: &mut Vec<(Key, V)>,
    ) -> u64 {
        if batch.is_empty() {
            return 0;
        }
        let count = batch.len();
        let mut lock_retries = 0u64;
        // Same contention strategy as single inserts: bounded try-borrow
        // attempts on fresh random shard lanes (moving the whole batch
        // rather than spinning on a contended one), side-publishing past a
        // busy holder, floor lane once the budget is exhausted.
        // Acquisitions re-validate the lane table under the borrow.
        let (lane, fell_back) = 'published: {
            let mut target = match hint {
                Some(q) if q < self.active_lanes() => q,
                _ => self.stride_lane(rng, shard, self.active_lanes()),
            };
            for _ in 0..self.config.max_retries {
                if let Some(mut guard) = self.lanes[target].try_exclusive(false) {
                    if target < self.active_lanes() {
                        for (key, value) in batch.drain(..) {
                            guard.push(key, value);
                        }
                        self.len.fetch_add(count, Ordering::Relaxed);
                        break 'published (target, false);
                    }
                    drop(guard);
                    lock_retries += 1;
                } else {
                    lock_retries += 1;
                    if self.side_publish_batch(target, batch) {
                        break 'published (target, false);
                    }
                }
                target = self.stride_lane(rng, shard, self.active_lanes());
            }
            let target = self.stride_lane(rng, shard, self.config.min_active_lanes());
            if let Some(mut guard) = self.lanes[target].try_exclusive(false) {
                for (key, value) in batch.drain(..) {
                    guard.push(key, value);
                }
                self.len.fetch_add(count, Ordering::Relaxed);
            } else {
                assert!(
                    self.side_publish_batch(target, batch),
                    "floor lanes are never retired"
                );
            }
            (target, true)
        };
        if let Some(obs) = &self.obs {
            if fell_back || lock_retries >= self.config.contention_event_threshold {
                obs.on_lane_contention(lane, lock_retries);
            }
        }
        self.elastic_tick(count as u64, lock_retries, 0);
        lock_retries
    }

    /// Picks the victim lane for one deleteMin attempt following the
    /// configured [`ChoiceRule`](crate::ChoiceRule) over the **active**
    /// lanes, using only the seqlock-stamped cached tops (zero borrow
    /// acquisitions — the original MultiQueue's unsynchronised peek, made
    /// tear-free). A lane whose sample is refused (a drain-type section in
    /// progress, so its minimum may be mid-removal) is treated like an
    /// empty lane for this attempt: conservative, and free of the
    /// top-vs-emptiness torn read. `scratch` is the caller's reusable
    /// sample buffer.
    fn choose_victim(&self, rng: &mut Xoshiro256, scratch: &mut Vec<usize>) -> Option<usize> {
        let active = self.active_lanes();
        self.config
            .choice
            .choose_by_key(rng, active, scratch, |lane| {
                let top = self.lanes[lane].sample_top()?;
                (top != EMPTY_TOP).then_some(top)
            })
    }

    /// The core removal step shared by `delete_min` and `delete_min_batch`:
    /// repeated choice-rule attempts over the active lanes, then a single
    /// lane lock under which up to `max` elements are drained (appended to
    /// `out`), then the deterministic steal fallback so the structure can
    /// always be emptied. Every drained element comes from one lane, so one
    /// lock acquisition and one random choice are amortised over the whole
    /// batch.
    ///
    /// The returned [`DrainOutcome`] carries, besides the drain count, the
    /// retry accounting the handle layer folds into
    /// [`HandleStats`](crate::HandleStats): how many retry-loop iterations
    /// were lost to contention or peek/lock races (with the sparse-sample
    /// subset broken out for the elastic controller), and whether a
    /// zero-element result came from a *quiescent-empty observation* (the
    /// element count read as zero, or the exhaustive locked steal scan found
    /// nothing) — the distinction schedulers need between "no work exists"
    /// and "work exists but this attempt lost races".
    ///
    /// When `log` is set (instrumented sessions), every drained element is
    /// stamped with a coherent queue timestamp **while the lane lock is
    /// held**, so the recorded removal order is the order the removals took
    /// effect — concurrent batches cannot interleave inside each other's
    /// logs. Elements moved by a shrink are not logged: they never leave the
    /// structure.
    pub(crate) fn drain_best_with(
        &self,
        rng: &mut Xoshiro256,
        scratch: &mut Vec<usize>,
        max: usize,
        out: &mut Vec<(Key, V)>,
        log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> DrainOutcome {
        let outcome = self.drain_best_inner(rng, scratch, max, out, log);
        self.elastic_tick(
            (outcome.drained as u64).max(1),
            outcome.contended_retries - outcome.sparse_retries,
            outcome.sparse_retries,
        );
        outcome
    }

    /// [`drain_best_with`](MultiQueue::drain_best_with) minus the controller
    /// tick (which must run with no lane lock held).
    fn drain_best_inner(
        &self,
        rng: &mut Xoshiro256,
        scratch: &mut Vec<usize>,
        max: usize,
        out: &mut Vec<(Key, V)>,
        mut log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> DrainOutcome {
        if max == 0 {
            return DrainOutcome::nothing();
        }
        let mut contended_retries = 0u64;
        let mut sparse_retries = 0u64;
        for _ in 0..self.config.max_retries {
            if self.len.load(Ordering::Relaxed) == 0 {
                return DrainOutcome {
                    drained: 0,
                    contended_retries,
                    sparse_retries,
                    observed_empty: true,
                };
            }
            let Some(victim) = self.choose_victim(rng, scratch) else {
                // Every sampled top looked empty while the structure was not:
                // the elements live in unsampled lanes. Retry with fresh
                // samples (and tell the controller the lanes look sparse).
                contended_retries += 1;
                sparse_retries += 1;
                continue;
            };
            let Some(mut guard) = self.lanes[victim].try_exclusive(true) else {
                // Borrow contention: restart the whole operation (paper's
                // rule).
                contended_retries += 1;
                continue;
            };
            // The acquisition folded any side-buffered inserts; drain.
            let drained = self.drain_heap(&mut guard, max, out, log.as_deref_mut());
            if drained > 0 {
                // Under the borrow, symmetric to the insert-side credit.
                self.len.fetch_sub(drained, Ordering::Relaxed);
                return DrainOutcome {
                    drained,
                    contended_retries,
                    sparse_retries,
                    observed_empty: false,
                };
            }
            // The lane was emptied between the peek and the borrow; retry.
            contended_retries += 1;
        }
        // Retry budget exhausted: fall back to a deterministic steal so the
        // structure can always be drained (needed for termination in Dijkstra
        // and in the drain phase of benchmarks).
        let drained = self.steal_best(max, out, log);
        DrainOutcome {
            drained,
            contended_retries,
            sparse_retries,
            // The steal scan exclusively borrowed (and side-folded) every
            // lane and found nothing — but a wait-free side publish can
            // complete on an already-scanned lane, so only a corroborating
            // `len` read of zero upgrades the scan to a quiescent-empty
            // claim (the credit precedes the push, so `len == 0` implies no
            // unfolded element exists).
            observed_empty: drained == 0 && self.len.load(Ordering::Relaxed) == 0,
        }
    }

    /// Pops up to `max` elements off an exclusively borrowed lane heap into
    /// `out`, timestamping each into `log` when instrumented (the caller
    /// holds the lane borrow, making the stamps coherent with the drain).
    fn drain_heap(
        &self,
        heap: &mut BinaryHeap<V>,
        max: usize,
        out: &mut Vec<(Key, V)>,
        mut log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> usize {
        let mut drained = 0;
        while drained < max {
            match heap.pop() {
                Some((key, value)) => {
                    if let Some(log) = log.as_deref_mut() {
                        log.push(TimestampedRemoval::new(self.next_timestamp(), key));
                    }
                    out.push((key, value));
                    drained += 1;
                }
                None => break,
            }
        }
        drained
    }

    /// The steal path, symmetric to the sampled drain: scans **all
    /// allocated lanes** (not just the active prefix, so nothing mid-resize
    /// can hide from it) and drains up to `max` elements from the one with
    /// the globally smallest top (falling through to the other lanes if it
    /// empties under foot). Linear in the lane count; only used when the
    /// sampled lanes keep coming up empty or contended.
    fn steal_best(
        &self,
        max: usize,
        out: &mut Vec<(Key, V)>,
        mut log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> usize {
        // First pass without borrows to find a candidate ordering cheaply
        // (raw top loads: staleness only affects the visit order).
        let mut best: Option<(Key, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            let t = lane.load_top();
            if t != EMPTY_TOP && best.is_none_or(|(bk, _)| t < bk) {
                best = Some((t, i));
            }
        }
        // Try the candidate first, then every other lane.
        let order: Vec<usize> = match best {
            Some((_, i)) => std::iter::once(i)
                .chain((0..self.lanes.len()).filter(move |&j| j != i))
                .collect(),
            None => (0..self.lanes.len()).collect(),
        };
        for i in order {
            let mut guard = self.lanes[i].exclusive_blocking(true);
            let drained = self.drain_heap(&mut guard, max, out, log.as_deref_mut());
            if drained > 0 {
                self.len.fetch_sub(drained, Ordering::Relaxed);
                return drained;
            }
        }
        0
    }
}

impl<V: Send> SharedPq<V> for MultiQueue<V> {
    type Handle<'q>
        = MqHandle<'q, V>
    where
        Self: 'q;

    fn register(&self) -> MqHandle<'_, V> {
        self.register_with(HandlePolicy::default())
    }

    fn register_policy(&self, policy: HandlePolicy) -> MqHandle<'_, V> {
        self.register_with(policy)
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn topology(&self) -> QueueTopology {
        // One load of the packed lane table keeps (active, epoch) mutually
        // consistent even when a resize races the snapshot.
        let table = self.lane_table.load(Ordering::Acquire);
        QueueTopology {
            active_lanes: (table & ACTIVE_MASK) as usize,
            max_lanes: self.lanes.len(),
            shards: self.config.shards,
            grows: self.grow_events.load(Ordering::Relaxed),
            shrinks: self.shrink_events.load(Ordering::Relaxed),
            resize_epoch: table >> 32,
        }
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ElasticPolicy;
    use crate::traits::PqHandle;
    use std::collections::HashSet;

    fn queue(queues: usize, beta: f64) -> MultiQueue<u64> {
        MultiQueue::new(
            MultiQueueConfig::with_queues(queues)
                .with_beta(beta)
                .with_seed(42),
        )
    }

    fn elastic_queue(queues: usize, min: usize) -> MultiQueue<u64> {
        MultiQueue::new(
            MultiQueueConfig::with_queues(queues)
                .with_seed(42)
                .with_elastic(ElasticPolicy::default().with_min_lanes(min)),
        )
    }

    /// Drains the queue through a fresh handle, returning popped keys.
    fn drain(q: &MultiQueue<u64>) -> Vec<u64> {
        let mut h = q.register();
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        out
    }

    #[test]
    fn empty_queue_behaviour() {
        let q = queue(4, 1.0);
        assert!(q.is_empty());
        assert_eq!(q.approx_len(), 0);
        assert_eq!(q.register().delete_min(), None);
        assert_eq!(q.lanes(), 4);
        assert_eq!(q.active_lanes(), 4, "static queues start at capacity");
        assert_eq!(q.resize_epoch(), 0);
        assert_eq!(q.lane_tops(), vec![None; 4]);
        assert!(q.name().contains("multiqueue"));
    }

    #[test]
    fn insert_then_drain_returns_every_element_once() {
        let q = queue(8, 0.75);
        let count = 5_000u64;
        let mut h = q.register();
        for k in 0..count {
            h.insert(k, k * 10);
        }
        assert_eq!(q.approx_len(), count as usize);
        assert_eq!(q.lane_lengths().iter().sum::<usize>(), count as usize);
        let mut seen = HashSet::new();
        while let Some((k, v)) = h.delete_min() {
            assert_eq!(v, k * 10);
            assert!(seen.insert(k), "key {k} returned twice");
        }
        assert_eq!(seen.len(), count as usize);
        assert!(q.is_empty());
        let stats = h.stats();
        assert_eq!(stats.inserts, count);
        assert_eq!(stats.removals, count);
    }

    #[test]
    fn single_lane_is_an_exact_priority_queue() {
        let q = queue(1, 1.0);
        let mut h = q.register();
        for k in [5u64, 1, 9, 3, 7] {
            h.insert(k, k);
        }
        drop(h);
        assert_eq!(drain(&q), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn handle_ids_are_sequential_and_rngs_deterministic() {
        let q = queue(4, 1.0);
        let a = q.register();
        let b = q.register();
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(q.registered_handles(), 2);
        // Same config ⇒ the same handle id draws the same stream.
        let q1 = queue(4, 1.0);
        let q2 = queue(4, 1.0);
        let mut h1 = q1.register_with(HandlePolicy::default());
        let mut h2 = q2.register_with(HandlePolicy::default());
        assert_eq!(h1.id(), h2.id());
        for k in 0..1_000u64 {
            h1.insert(k, k);
            h2.insert(k, k);
        }
        for _ in 0..1_000 {
            assert_eq!(h1.delete_min(), h2.delete_min());
        }
    }

    #[test]
    #[should_panic(expected = "reserved as the empty-lane sentinel")]
    fn key_max_is_rejected_at_insert() {
        let q = queue(2, 1.0);
        q.register().insert(u64::MAX, 0);
    }

    #[test]
    fn key_max_minus_one_is_a_legal_key() {
        let q = queue(2, 1.0);
        let mut h = q.register();
        h.insert(u64::MAX - 1, 7);
        h.insert(3, 1);
        assert_eq!(h.delete_min(), Some((3, 1)));
        assert_eq!(h.delete_min(), Some((u64::MAX - 1, 7)));
    }

    #[test]
    fn relaxation_quality_is_order_n_sequentially() {
        // Sequential use mirrors the paper's sequential process, so the mean
        // rank of returned elements should be O(n). We measure it with the
        // timestamp/inversion methodology from rank-stats.
        use rank_stats::inversion::InversionCounter;
        let n = 8;
        let q = queue(n, 1.0);
        let total = 20_000u64;
        let mut h = q.register();
        for k in 0..total {
            h.insert(k, k);
        }
        let mut log = InversionCounter::new();
        let mut ts = 0u64;
        while let Some((k, _)) = h.delete_min() {
            log.record(ts, k);
            ts += 1;
        }
        let summary = log.summarize();
        assert_eq!(summary.removals, total);
        assert!(
            summary.mean_rank < 4.0 * n as f64,
            "mean rank {} should be O(n) for n={n}",
            summary.mean_rank
        );
    }

    #[test]
    fn lane_tops_reflect_contents() {
        let q = queue(2, 1.0);
        let mut h = q.register();
        h.insert(10, 0);
        h.insert(20, 0);
        let tops = q.lane_tops();
        let present: Vec<Key> = tops.into_iter().flatten().collect();
        assert!(!present.is_empty());
        for t in present {
            assert!(t == 10 || t == 20);
        }
    }

    #[test]
    fn concurrent_inserts_and_deletes_conserve_elements() {
        let threads = 4;
        let per_thread = 3_000u64;
        let q = queue(8, 0.5);
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..threads {
                let q = &q;
                workers.push(scope.spawn(move || {
                    let mut handle = q.register();
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        // Interleave deletions to exercise contention.
                        if i % 2 == 1 {
                            if let Some((k, _)) = handle.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            workers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        // Drain what is left sequentially.
        let mut all = removed;
        all.extend(drain(&q));
        all.sort_unstable();
        let expected: Vec<u64> = (0..threads as u64 * per_thread).collect();
        assert_eq!(
            all, expected,
            "every inserted key must come out exactly once"
        );
    }

    #[test]
    fn batched_inserts_racing_drains_never_underflow_len() {
        // Regression for the batched-insert `len` underflow: a batch flush
        // used to credit `len` only after releasing the lane, so a drain
        // scheduled into that window popped the elements and `fetch_sub`'d
        // `len` below zero — wrapping `approx_len()` to ~2^64. Hammer
        // batch-flushes against batch-drains and assert the approximate
        // length never exceeds the number of elements ever inserted (an
        // underflow reads as an astronomically large value). The companion
        // deterministic proof lives in `tests/check_lane_fastpath.rs`,
        // which drives the explorer straight into the (nanoseconds-wide)
        // window this test can only make probable.
        let threads = 4;
        let per_thread = 2_000u64;
        let total = threads as usize * per_thread as usize;
        let q = queue(4, 1.0);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let q = &q;
                scope.spawn(move || {
                    let mut handle = q.register_with(HandlePolicy::default().with_insert_batch(8));
                    let base = t as u64 * per_thread;
                    let mut out = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        if i % 8 == 7 {
                            handle.delete_min_batch_into(4, &mut out);
                            let len = q.approx_len();
                            assert!(
                                len <= total,
                                "approx_len() exceeds total-inserted: {len} (len underflow)"
                            );
                        }
                    }
                });
            }
        });
        let remaining = drain(&q).len();
        assert_eq!(q.approx_len(), 0, "quiescent len is exact");
        assert!(remaining <= total);
    }

    #[test]
    fn operations_survive_a_stalled_lane_holder() {
        // Appendix C pathology: a thread holds a lane lock "forever". The
        // structure must remain usable (operations route around the held lane)
        // and must not lose or duplicate elements.
        let q = queue(4, 1.0);
        let mut h = q.register();
        for k in 0..1_000u64 {
            h.insert(k, k);
        }
        let popped = q.with_lane_locked(0, || {
            let mut popped = Vec::new();
            for k in 1_000..1_200u64 {
                h.insert(k, k);
            }
            for _ in 0..500 {
                if let Some((k, _)) = h.delete_min() {
                    popped.push(k);
                }
            }
            popped
        });
        assert!(
            !popped.is_empty(),
            "deleteMin must make progress around the stall"
        );
        let mut all = popped;
        all.extend(drain(&q));
        all.sort_unstable();
        assert_eq!(all, (0..1_200u64).collect::<Vec<_>>());
    }

    #[test]
    fn beta_zero_still_drains_correctly() {
        let q = queue(4, 0.0);
        let mut h = q.register();
        for k in 0..500u64 {
            h.insert(k, k);
        }
        drop(h);
        assert_eq!(drain(&q).len(), 500);
    }

    #[test]
    fn approx_len_tracks_operations_sequentially() {
        let q = queue(4, 1.0);
        let mut h = q.register();
        for k in 0..100u64 {
            h.insert(k, k);
        }
        assert_eq!(q.approx_len(), 100);
        for _ in 0..40 {
            h.delete_min();
        }
        assert_eq!(q.approx_len(), 60);
    }

    #[test]
    fn elastic_queue_starts_at_the_floor() {
        let q = elastic_queue(16, 4);
        assert_eq!(q.lanes(), 16);
        assert_eq!(q.active_lanes(), 4);
        assert_eq!(q.resize_epoch(), 0);
        let shape = q.topology();
        assert_eq!(shape.active_lanes, 4);
        assert_eq!(shape.max_lanes, 16);
        assert_eq!(shape.shards, 1);
        assert_eq!(shape.resize_events(), 0);
        assert_eq!(shape.resize_epoch, 0);
    }

    #[test]
    fn manual_resize_moves_the_active_prefix_and_epoch() {
        let q = elastic_queue(16, 2);
        assert!(q.resize_active(8));
        assert_eq!(q.active_lanes(), 8);
        assert_eq!(q.resize_epoch(), 1);
        assert!(q.resize_active(2));
        assert_eq!(q.active_lanes(), 2);
        assert_eq!(q.resize_epoch(), 2);
        // Clamped targets that land on the current count are no-ops.
        assert!(!q.resize_active(0), "clamps to the floor (already there)");
        assert!(!q.resize_active(2));
        assert!(q.resize_active(1_000_000), "clamps to capacity");
        assert_eq!(q.active_lanes(), 16);
        let shape = q.topology();
        assert_eq!(shape.grows, 2);
        assert_eq!(shape.shrinks, 1);
        assert_eq!(shape.resize_events(), 3);
        assert_eq!(shape.resize_epoch, 3, "every resize bumps the epoch");
    }

    #[test]
    fn static_queue_refuses_to_resize() {
        let q = queue(8, 1.0);
        // min_active_lanes == queues for static configs: every target clamps
        // to the full capacity.
        assert!(!q.resize_active(2));
        assert_eq!(q.active_lanes(), 8);
    }

    #[test]
    fn shrink_conserves_every_element() {
        let q = elastic_queue(16, 2);
        q.resize_active(16);
        let mut h = q.register();
        for k in 0..2_000u64 {
            h.insert(k, k);
        }
        // Everything below the live tide line moves into the prefix.
        assert!(q.resize_active(2));
        assert_eq!(q.approx_len(), 2_000, "a shrink never changes the count");
        let lengths = q.lane_lengths();
        assert_eq!(lengths.iter().sum::<usize>(), 2_000);
        assert!(
            lengths[2..].iter().all(|&l| l == 0),
            "retired lanes must be empty after the shrink: {lengths:?}"
        );
        drop(h);
        let mut out = drain(&q);
        out.sort_unstable();
        assert_eq!(out, (0..2_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn grow_exposes_new_lanes_to_inserts() {
        let q = elastic_queue(8, 2);
        let mut h = q.register();
        for k in 0..64u64 {
            h.insert(k, k);
        }
        let lengths = q.lane_lengths();
        assert!(
            lengths[2..].iter().all(|&l| l == 0),
            "only the active prefix may hold elements: {lengths:?}"
        );
        q.resize_active(8);
        for k in 64..4_096u64 {
            h.insert(k, k);
        }
        let lengths = q.lane_lengths();
        assert!(
            lengths[2..].iter().any(|&l| l > 0),
            "grown lanes must start taking inserts: {lengths:?}"
        );
        drop(h);
        assert_eq!(drain(&q).len(), 4_096);
    }

    #[test]
    fn concurrent_resizes_conserve_elements() {
        // The conformance property at engine level: hammer inserts/deletes
        // from several threads while a controller thread forces grows and
        // shrinks; every key must come out exactly once.
        let threads = 4;
        let per_thread = 2_000u64;
        let q = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_seed(11)
                .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
        );
        let stop = std::sync::atomic::AtomicBool::new(false);
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let resizer = scope.spawn(|| {
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    q.resize_active(if flip { 16 } else { 2 });
                    flip = !flip;
                    std::thread::yield_now();
                }
            });
            let mut workers = Vec::new();
            for t in 0..threads {
                let q = &q;
                workers.push(scope.spawn(move || {
                    let mut handle = q.register();
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        if i % 2 == 1 {
                            if let Some((k, _)) = handle.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            let removed = workers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            stop.store(true, Ordering::Relaxed);
            resizer.join().unwrap();
            removed
        });
        let mut all = removed;
        all.extend(drain(&q));
        all.sort_unstable();
        assert_eq!(all, (0..threads as u64 * per_thread).collect::<Vec<_>>());
    }

    #[test]
    fn controller_grows_under_forced_lock_contention() {
        // Hold the only non-floor... actually: hold one of the two active
        // lanes so half the try-locks fail, then push operations through.
        // The controller must react by growing the active set.
        let q = std::sync::Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(8).with_seed(5).with_elastic(
                ElasticPolicy::default()
                    .with_min_lanes(2)
                    .with_check_interval(64)
                    .with_thresholds(0.05, 0.9)
                    .with_cooldown_checks(0),
            ),
        ));
        assert_eq!(q.active_lanes(), 2);
        let q2 = std::sync::Arc::clone(&q);
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let b2 = std::sync::Arc::clone(&barrier);
        let holder = std::thread::spawn(move || {
            q2.with_lane_locked(0, || {
                b2.wait(); // lane 0 held from here on
                std::thread::sleep(std::time::Duration::from_millis(200));
            })
        });
        barrier.wait();
        let mut h = q.register();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut k = 0u64;
        while q.active_lanes() == 2 && std::time::Instant::now() < deadline {
            h.insert(k, k);
            k += 1;
        }
        holder.join().unwrap();
        assert!(
            q.active_lanes() > 2,
            "sustained lock contention must grow the active set"
        );
        assert!(q.topology().grows >= 1);
    }

    #[test]
    fn controller_shrinks_sparse_idle_lanes() {
        // Many active lanes, a single element bouncing: almost every sampled
        // top is empty, so the sparse rate is high and contention zero — the
        // controller must shrink towards the floor.
        let q = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16).with_seed(5).with_elastic(
                ElasticPolicy::default()
                    .with_min_lanes(2)
                    .with_check_interval(128)
                    .with_thresholds(0.5, 0.05)
                    .with_cooldown_checks(0),
            ),
        );
        q.resize_active(16);
        assert_eq!(q.active_lanes(), 16);
        let mut h = q.register();
        for round in 0..50_000u64 {
            h.insert(round % 1_000, 0);
            h.delete_min();
            if q.active_lanes() == 2 {
                break;
            }
        }
        assert!(
            q.active_lanes() < 16,
            "a sparse workload must shrink the active set (still at {})",
            q.active_lanes()
        );
        assert!(q.topology().shrinks >= 1);
    }

    #[test]
    fn sharded_inserts_stay_in_their_stride() {
        let q =
            MultiQueue::<u64>::new(MultiQueueConfig::with_queues(8).with_shards(4).with_seed(3));
        // Handle ids 0..4 map to shards 0..4 by default.
        let mut handles: Vec<_> = (0..4).map(|_| q.register()).collect();
        for (s, h) in handles.iter_mut().enumerate() {
            for k in 0..64u64 {
                h.insert(k * 4 + s as u64, 0);
            }
        }
        let lengths = q.lane_lengths();
        assert_eq!(lengths.iter().sum::<usize>(), 256);
        // Shard s owns lanes {s, s+4}: each shard's 64 inserts landed there.
        for s in 0..4 {
            assert_eq!(
                lengths[s] + lengths[s + 4],
                64,
                "shard {s} inserts must stay in its stride: {lengths:?}"
            );
        }
        drop(handles);
        assert_eq!(drain(&q).len(), 256);
    }

    #[test]
    fn sharded_elastic_keeps_every_shard_populated() {
        // With 4 shards the floor clamps to 4 even though min_lanes = 1, so
        // every shard always owns at least one active lane.
        let q = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_shards(4)
                .with_seed(9)
                .with_elastic(ElasticPolicy::default().with_min_lanes(1)),
        );
        assert_eq!(q.active_lanes(), 4);
        let mut handles: Vec<_> = (0..4).map(|_| q.register()).collect();
        for (s, h) in handles.iter_mut().enumerate() {
            for k in 0..32u64 {
                h.insert(k * 8 + s as u64, 0);
            }
        }
        q.resize_active(16);
        for (s, h) in handles.iter_mut().enumerate() {
            for k in 32..64u64 {
                h.insert(k * 8 + s as u64, 0);
            }
        }
        q.resize_active(4);
        assert_eq!(q.approx_len(), 4 * 64);
        drop(handles);
        assert_eq!(drain(&q).len(), 4 * 64);
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MultiQueue<u64>>();
        assert_send_sync::<MultiQueue<Vec<u8>>>();
    }
}
