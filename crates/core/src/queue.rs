//! The concurrent (1 + β) MultiQueue.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use rank_stats::inversion::TimestampedRemoval;
use rank_stats::rng::{RandomSource, SplitMix64, Xoshiro256};
use seq_pq::{BinaryHeap, SequentialPriorityQueue};

use crate::config::MultiQueueConfig;
use crate::handle::{HandlePolicy, MqHandle};
use crate::traits::{Key, SharedPq};

/// Sentinel stored in a lane's cached-top slot when the lane is empty.
/// [`check_key`](crate::check_key) keeps real keys out of this value at
/// insert time.
const EMPTY_TOP: u64 = u64::MAX;

/// What one [`MultiQueue::drain_best_with`] call did, beyond the drained
/// elements themselves: the retry accounting the handle layer turns into
/// [`HandleStats`](crate::HandleStats) counters.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DrainOutcome {
    /// Number of elements appended to the caller's buffer.
    pub drained: usize,
    /// Retry-loop iterations lost to contention or peek/lock races.
    pub contended_retries: u64,
    /// Whether a zero-element result came from a quiescent-empty observation
    /// (`len` read as zero, or the locked steal scan found every lane empty)
    /// rather than from `max == 0`.
    pub observed_empty: bool,
}

impl DrainOutcome {
    /// The `max == 0` no-op outcome.
    fn nothing() -> Self {
        Self {
            drained: 0,
            contended_retries: 0,
            observed_empty: false,
        }
    }
}

/// One internal lane: a locked sequential heap plus a lock-free hint of its
/// current top key (used by `delete_min` to compare two lanes without taking
/// either lock, exactly like the original MultiQueue's unsynchronised peek).
#[derive(Debug)]
struct Lane<V> {
    heap: Mutex<BinaryHeap<V>>,
    top: AtomicU64,
}

impl<V> Lane<V> {
    fn new() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
            top: AtomicU64::new(EMPTY_TOP),
        }
    }

    /// Refreshes the cached top from the (locked) heap.
    fn refresh_top(&self, heap: &BinaryHeap<V>) {
        self.top
            .store(heap.peek_key().unwrap_or(EMPTY_TOP), Ordering::Relaxed);
    }
}

/// The relaxed concurrent priority queue of the paper.
///
/// All operations go through registered session handles
/// ([`register`](SharedPq::register) /
/// [`register_with`](MultiQueue::register_with)); each handle owns a private
/// RNG stream seeded deterministically from the queue seed and the handle's
/// id, so runs are reproducible and the hot path performs no thread-local
/// lookups.
///
/// See the [crate-level documentation](crate) for the algorithm; see
/// [`MultiQueueConfig`] for sizing and the choice rule (β / d).
///
/// # Example
///
/// ```
/// use choice_pq::{MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
///
/// // Four lanes, 4-choice deleteMin, batched removals.
/// let queue = MultiQueue::<&'static str>::new(MultiQueueConfig::with_queues(4).with_d(4));
/// let mut session = queue.register();
/// session.insert(2, "b");
/// session.insert(1, "a");
/// session.insert(3, "c");
/// // Drain a batch of up to 8 under a single lane lock.
/// let batch: Vec<_> = session.delete_min_batch(8).collect();
/// assert!(!batch.is_empty());
/// assert!(queue.approx_len() < 3);
/// ```
#[derive(Debug)]
pub struct MultiQueue<V> {
    lanes: Vec<CachePadded<Lane<V>>>,
    len: AtomicUsize,
    /// Monotonic id source for registered handles.
    next_handle_id: AtomicU64,
    /// Coherent timestamp source for rank instrumentation (Section 5
    /// methodology); shared by every instrumented handle of this queue.
    clock: AtomicU64,
    config: MultiQueueConfig,
}

impl<V> MultiQueue<V> {
    /// Creates an empty MultiQueue.
    pub fn new(config: MultiQueueConfig) -> Self {
        let lanes = (0..config.queues)
            .map(|_| CachePadded::new(Lane::new()))
            .collect();
        Self {
            lanes,
            len: AtomicUsize::new(0),
            next_handle_id: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            config,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &MultiQueueConfig {
        &self.config
    }

    /// Number of internal lanes (`n`).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Number of handles registered so far (never decreases; dropped handles
    /// do not return their id).
    pub fn registered_handles(&self) -> u64 {
        self.next_handle_id.load(Ordering::Relaxed)
    }

    /// The cached top key of every lane (`None` for empty lanes); a
    /// diagnostic snapshot, not linearizable.
    pub fn lane_tops(&self) -> Vec<Option<Key>> {
        self.lanes
            .iter()
            .map(|l| {
                let t = l.top.load(Ordering::Relaxed);
                if t == EMPTY_TOP {
                    None
                } else {
                    Some(t)
                }
            })
            .collect()
    }

    /// Per-lane element counts; takes every lane lock, so only meaningful when
    /// the structure is quiescent (tests and diagnostics).
    pub fn lane_lengths(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.heap.lock().len()).collect()
    }

    /// Runs `f` while holding the lock of lane `index`. Used by tests to
    /// inject the "stalled thread holding a lane" pathology discussed in
    /// Appendix C of the paper and check that other operations stay correct.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_lane_locked<R>(&self, index: usize, f: impl FnOnce() -> R) -> R {
        let _guard = self.lanes[index].heap.lock();
        f()
    }

    /// Opens a session with an explicit [`HandlePolicy`].
    ///
    /// The handle's RNG stream is seeded deterministically from the queue
    /// seed and the allocated handle id, so a single-threaded run with the
    /// same seed, policies and registration order replays exactly.
    pub fn register_with(&self, policy: HandlePolicy) -> MqHandle<'_, V> {
        let id = self.next_handle_id.fetch_add(1, Ordering::Relaxed);
        MqHandle::new(self, id, self.handle_rng(id), policy)
    }

    /// The deterministic per-handle RNG: queue seed and handle id mixed
    /// through SplitMix64 into a full Xoshiro256 state.
    fn handle_rng(&self, id: u64) -> Xoshiro256 {
        let mut mixer = SplitMix64::seeded(
            self.config
                .seed
                .wrapping_add((id ^ 0xA5A5_5A5A_F00D_CAFE).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        Xoshiro256::seeded(mixer.next_u64())
    }

    /// Draws a coherent removal timestamp (instrumented handles).
    pub(crate) fn next_timestamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Inserts `(key, value)`, trying `hint` first when present, then random
    /// lanes, then blocking on one lane once the retry budget is exhausted
    /// (heavy oversubscription).
    pub(crate) fn insert_with(
        &self,
        rng: &mut Xoshiro256,
        hint: Option<usize>,
        key: Key,
        value: V,
    ) {
        debug_assert!(key != EMPTY_TOP, "keys are validated at the handle layer");
        let n = self.lanes.len();
        let mut value = Some(value);
        let mut push = |q: usize, heap: &mut BinaryHeap<V>| {
            heap.push(key, value.take().expect("value not yet consumed"));
            self.lanes[q].refresh_top(heap);
            self.len.fetch_add(1, Ordering::Relaxed);
        };
        if let Some(q) = hint {
            debug_assert!(q < n, "lane hint out of range");
            if let Some(mut heap) = self.lanes[q].heap.try_lock() {
                push(q, &mut heap);
                return;
            }
        }
        for _ in 0..self.config.max_retries {
            let q = rng.next_index(n);
            if let Some(mut heap) = self.lanes[q].heap.try_lock() {
                push(q, &mut heap);
                return;
            }
        }
        // Retry budget exhausted (heavy oversubscription): block on one lane.
        let q = rng.next_index(n);
        let mut heap = self.lanes[q].heap.lock();
        push(q, &mut heap);
    }

    /// Publishes a whole insert batch under a single lane lock (the batched
    /// MultiQueue refinement: one random choice and one lock acquisition
    /// amortised over the batch, at a bounded rank-quality cost).
    pub(crate) fn insert_batch_with(
        &self,
        rng: &mut Xoshiro256,
        hint: Option<usize>,
        batch: &mut Vec<(Key, V)>,
    ) {
        if batch.is_empty() {
            return;
        }
        let n = self.lanes.len();
        let count = batch.len();
        let mut target = hint.unwrap_or_else(|| rng.next_index(n));
        debug_assert!(target < n, "lane hint out of range");
        // Same contention strategy as single inserts: bounded try-lock
        // attempts on fresh random lanes (moving the whole batch rather than
        // spinning on a contended one), then block on one lane so a stalled
        // holder cannot make a flush busy-spin forever.
        let mut heap = None;
        for _ in 0..self.config.max_retries {
            if let Some(locked) = self.lanes[target].heap.try_lock() {
                heap = Some(locked);
                break;
            }
            target = rng.next_index(n);
        }
        let mut heap = heap.unwrap_or_else(|| {
            target = rng.next_index(n);
            self.lanes[target].heap.lock()
        });
        for (key, value) in batch.drain(..) {
            heap.push(key, value);
        }
        self.lanes[target].refresh_top(&heap);
        self.len.fetch_add(count, Ordering::Relaxed);
    }

    /// Picks the victim lane for one deleteMin attempt following the
    /// configured [`ChoiceRule`](crate::ChoiceRule), using only the cached
    /// tops (no locks are taken, exactly like the original MultiQueue's
    /// unsynchronised peek). `scratch` is the caller's reusable sample
    /// buffer.
    fn choose_victim(&self, rng: &mut Xoshiro256, scratch: &mut Vec<usize>) -> Option<usize> {
        let n = self.lanes.len();
        self.config.choice.choose_by_key(rng, n, scratch, |lane| {
            let top = self.lanes[lane].top.load(Ordering::Relaxed);
            (top != EMPTY_TOP).then_some(top)
        })
    }

    /// The core removal step shared by `delete_min` and `delete_min_batch`:
    /// repeated choice-rule attempts, then a single lane lock under which up
    /// to `max` elements are drained (appended to `out`), then the
    /// deterministic steal fallback so the structure can always be emptied.
    /// Every drained element comes from one lane, so one lock acquisition and
    /// one random choice are amortised over the whole batch.
    ///
    /// The returned [`DrainOutcome`] carries, besides the drain count, the
    /// retry accounting the handle layer folds into
    /// [`HandleStats`](crate::HandleStats): how many retry-loop iterations
    /// were lost to contention or peek/lock races, and whether a zero-element
    /// result came from a *quiescent-empty observation* (the element count
    /// read as zero, or the exhaustive locked steal scan found nothing) —
    /// the distinction schedulers need between "no work exists" and "work
    /// exists but this attempt lost races".
    ///
    /// When `log` is set (instrumented sessions), every drained element is
    /// stamped with a coherent queue timestamp **while the lane lock is
    /// held**, so the recorded removal order is the order the removals took
    /// effect — concurrent batches cannot interleave inside each other's
    /// logs.
    pub(crate) fn drain_best_with(
        &self,
        rng: &mut Xoshiro256,
        scratch: &mut Vec<usize>,
        max: usize,
        out: &mut Vec<(Key, V)>,
        mut log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> DrainOutcome {
        if max == 0 {
            return DrainOutcome::nothing();
        }
        let mut contended_retries = 0u64;
        for _ in 0..self.config.max_retries {
            if self.len.load(Ordering::Relaxed) == 0 {
                return DrainOutcome {
                    drained: 0,
                    contended_retries,
                    observed_empty: true,
                };
            }
            let Some(victim) = self.choose_victim(rng, scratch) else {
                // Every sampled top looked empty while the structure was not:
                // the elements live in unsampled lanes. Retry with fresh
                // samples.
                contended_retries += 1;
                continue;
            };
            let Some(mut heap) = self.lanes[victim].heap.try_lock() else {
                // Lock contention: restart the whole operation (paper's rule).
                contended_retries += 1;
                continue;
            };
            let drained = self.drain_heap(&mut heap, max, out, log.as_deref_mut());
            self.lanes[victim].refresh_top(&heap);
            if drained > 0 {
                self.len.fetch_sub(drained, Ordering::Relaxed);
                return DrainOutcome {
                    drained,
                    contended_retries,
                    observed_empty: false,
                };
            }
            // The lane was emptied between the peek and the lock; retry.
            contended_retries += 1;
        }
        // Retry budget exhausted: fall back to a deterministic steal so the
        // structure can always be drained (needed for termination in Dijkstra
        // and in the drain phase of benchmarks).
        let drained = self.steal_best(max, out, log);
        DrainOutcome {
            drained,
            contended_retries,
            // The steal scan locked every lane and found nothing: that is an
            // exhaustive (momentarily linearizable) emptiness observation.
            observed_empty: drained == 0,
        }
    }

    /// Pops up to `max` elements off a locked lane heap into `out`,
    /// timestamping each into `log` when instrumented (the caller holds the
    /// lane lock, making the stamps coherent with the drain).
    fn drain_heap(
        &self,
        heap: &mut BinaryHeap<V>,
        max: usize,
        out: &mut Vec<(Key, V)>,
        mut log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> usize {
        let mut drained = 0;
        while drained < max {
            match heap.pop() {
                Some((key, value)) => {
                    if let Some(log) = log.as_deref_mut() {
                        log.push(TimestampedRemoval::new(self.next_timestamp(), key));
                    }
                    out.push((key, value));
                    drained += 1;
                }
                None => break,
            }
        }
        drained
    }

    /// The steal path, symmetric to the sampled drain: scans all lanes and
    /// drains up to `max` elements from the one with the globally smallest
    /// top (falling through to the other lanes if it empties under foot).
    /// Linear in the lane count; only used when the sampled lanes keep coming
    /// up empty or contended.
    fn steal_best(
        &self,
        max: usize,
        out: &mut Vec<(Key, V)>,
        mut log: Option<&mut Vec<TimestampedRemoval>>,
    ) -> usize {
        // First pass without locks to find a candidate ordering cheaply.
        let mut best: Option<(Key, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            let t = lane.top.load(Ordering::Relaxed);
            if t != EMPTY_TOP && best.is_none_or(|(bk, _)| t < bk) {
                best = Some((t, i));
            }
        }
        // Try the candidate first, then every other lane.
        let order: Vec<usize> = match best {
            Some((_, i)) => std::iter::once(i)
                .chain((0..self.lanes.len()).filter(move |&j| j != i))
                .collect(),
            None => (0..self.lanes.len()).collect(),
        };
        for i in order {
            let mut heap = self.lanes[i].heap.lock();
            let drained = self.drain_heap(&mut heap, max, out, log.as_deref_mut());
            if drained > 0 {
                self.lanes[i].refresh_top(&heap);
                self.len.fetch_sub(drained, Ordering::Relaxed);
                return drained;
            }
        }
        0
    }
}

impl<V: Send> SharedPq<V> for MultiQueue<V> {
    type Handle<'q>
        = MqHandle<'q, V>
    where
        Self: 'q;

    fn register(&self) -> MqHandle<'_, V> {
        self.register_with(HandlePolicy::default())
    }

    fn register_policy(&self, policy: HandlePolicy) -> MqHandle<'_, V> {
        self.register_with(policy)
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn name(&self) -> String {
        self.config.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PqHandle;
    use std::collections::HashSet;

    fn queue(queues: usize, beta: f64) -> MultiQueue<u64> {
        MultiQueue::new(
            MultiQueueConfig::with_queues(queues)
                .with_beta(beta)
                .with_seed(42),
        )
    }

    /// Drains the queue through a fresh handle, returning popped keys.
    fn drain(q: &MultiQueue<u64>) -> Vec<u64> {
        let mut h = q.register();
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        out
    }

    #[test]
    fn empty_queue_behaviour() {
        let q = queue(4, 1.0);
        assert!(q.is_empty());
        assert_eq!(q.approx_len(), 0);
        assert_eq!(q.register().delete_min(), None);
        assert_eq!(q.lanes(), 4);
        assert_eq!(q.lane_tops(), vec![None; 4]);
        assert!(q.name().contains("multiqueue"));
    }

    #[test]
    fn insert_then_drain_returns_every_element_once() {
        let q = queue(8, 0.75);
        let count = 5_000u64;
        let mut h = q.register();
        for k in 0..count {
            h.insert(k, k * 10);
        }
        assert_eq!(q.approx_len(), count as usize);
        assert_eq!(q.lane_lengths().iter().sum::<usize>(), count as usize);
        let mut seen = HashSet::new();
        while let Some((k, v)) = h.delete_min() {
            assert_eq!(v, k * 10);
            assert!(seen.insert(k), "key {k} returned twice");
        }
        assert_eq!(seen.len(), count as usize);
        assert!(q.is_empty());
        let stats = h.stats();
        assert_eq!(stats.inserts, count);
        assert_eq!(stats.removals, count);
    }

    #[test]
    fn single_lane_is_an_exact_priority_queue() {
        let q = queue(1, 1.0);
        let mut h = q.register();
        for k in [5u64, 1, 9, 3, 7] {
            h.insert(k, k);
        }
        drop(h);
        assert_eq!(drain(&q), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn handle_ids_are_sequential_and_rngs_deterministic() {
        let q = queue(4, 1.0);
        let a = q.register();
        let b = q.register();
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(q.registered_handles(), 2);
        // Same config ⇒ the same handle id draws the same stream.
        let q1 = queue(4, 1.0);
        let q2 = queue(4, 1.0);
        let mut h1 = q1.register_with(HandlePolicy::default());
        let mut h2 = q2.register_with(HandlePolicy::default());
        assert_eq!(h1.id(), h2.id());
        for k in 0..1_000u64 {
            h1.insert(k, k);
            h2.insert(k, k);
        }
        for _ in 0..1_000 {
            assert_eq!(h1.delete_min(), h2.delete_min());
        }
    }

    #[test]
    #[should_panic(expected = "reserved as the empty-lane sentinel")]
    fn key_max_is_rejected_at_insert() {
        let q = queue(2, 1.0);
        q.register().insert(u64::MAX, 0);
    }

    #[test]
    fn key_max_minus_one_is_a_legal_key() {
        let q = queue(2, 1.0);
        let mut h = q.register();
        h.insert(u64::MAX - 1, 7);
        h.insert(3, 1);
        assert_eq!(h.delete_min(), Some((3, 1)));
        assert_eq!(h.delete_min(), Some((u64::MAX - 1, 7)));
    }

    #[test]
    fn relaxation_quality_is_order_n_sequentially() {
        // Sequential use mirrors the paper's sequential process, so the mean
        // rank of returned elements should be O(n). We measure it with the
        // timestamp/inversion methodology from rank-stats.
        use rank_stats::inversion::InversionCounter;
        let n = 8;
        let q = queue(n, 1.0);
        let total = 20_000u64;
        let mut h = q.register();
        for k in 0..total {
            h.insert(k, k);
        }
        let mut log = InversionCounter::new();
        let mut ts = 0u64;
        while let Some((k, _)) = h.delete_min() {
            log.record(ts, k);
            ts += 1;
        }
        let summary = log.summarize();
        assert_eq!(summary.removals, total);
        assert!(
            summary.mean_rank < 4.0 * n as f64,
            "mean rank {} should be O(n) for n={n}",
            summary.mean_rank
        );
    }

    #[test]
    fn lane_tops_reflect_contents() {
        let q = queue(2, 1.0);
        let mut h = q.register();
        h.insert(10, 0);
        h.insert(20, 0);
        let tops = q.lane_tops();
        let present: Vec<Key> = tops.into_iter().flatten().collect();
        assert!(!present.is_empty());
        for t in present {
            assert!(t == 10 || t == 20);
        }
    }

    #[test]
    fn concurrent_inserts_and_deletes_conserve_elements() {
        let threads = 4;
        let per_thread = 3_000u64;
        let q = queue(8, 0.5);
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..threads {
                let q = &q;
                workers.push(scope.spawn(move || {
                    let mut handle = q.register();
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        // Interleave deletions to exercise contention.
                        if i % 2 == 1 {
                            if let Some((k, _)) = handle.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            workers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        // Drain what is left sequentially.
        let mut all = removed;
        all.extend(drain(&q));
        all.sort_unstable();
        let expected: Vec<u64> = (0..threads as u64 * per_thread).collect();
        assert_eq!(
            all, expected,
            "every inserted key must come out exactly once"
        );
    }

    #[test]
    fn operations_survive_a_stalled_lane_holder() {
        // Appendix C pathology: a thread holds a lane lock "forever". The
        // structure must remain usable (operations route around the held lane)
        // and must not lose or duplicate elements.
        let q = queue(4, 1.0);
        let mut h = q.register();
        for k in 0..1_000u64 {
            h.insert(k, k);
        }
        let popped = q.with_lane_locked(0, || {
            let mut popped = Vec::new();
            for k in 1_000..1_200u64 {
                h.insert(k, k);
            }
            for _ in 0..500 {
                if let Some((k, _)) = h.delete_min() {
                    popped.push(k);
                }
            }
            popped
        });
        assert!(
            !popped.is_empty(),
            "deleteMin must make progress around the stall"
        );
        let mut all = popped;
        all.extend(drain(&q));
        all.sort_unstable();
        assert_eq!(all, (0..1_200u64).collect::<Vec<_>>());
    }

    #[test]
    fn beta_zero_still_drains_correctly() {
        let q = queue(4, 0.0);
        let mut h = q.register();
        for k in 0..500u64 {
            h.insert(k, k);
        }
        drop(h);
        assert_eq!(drain(&q).len(), 500);
    }

    #[test]
    fn approx_len_tracks_operations_sequentially() {
        let q = queue(4, 1.0);
        let mut h = q.register();
        for k in 0..100u64 {
            h.insert(k, k);
        }
        assert_eq!(q.approx_len(), 100);
        for _ in 0..40 {
            h.delete_min();
        }
        assert_eq!(q.approx_len(), 60);
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MultiQueue<u64>>();
        assert_send_sync::<MultiQueue<Vec<u8>>>();
    }
}
