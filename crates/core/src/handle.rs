//! Per-thread handles layered on top of the MultiQueue.
//!
//! * [`InstrumentedHandle`] implements the measurement methodology of
//!   Section 5: every `delete_min` is stamped with a globally coherent
//!   timestamp and logged locally; the merged logs are post-processed by
//!   [`rank_stats::inversion::InversionCounter`] to obtain the mean rank
//!   returned (Figure 2).
//! * [`StickyHandle`] implements the batching/stickiness optimisation used by
//!   later MultiQueue work (and mentioned as an engineering refinement): a
//!   thread keeps using the lane it last touched for a bounded number of
//!   consecutive operations, trading a small amount of rank quality for fewer
//!   random cache misses. It exists so the ablation benchmark can quantify
//!   that trade-off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rank_stats::inversion::TimestampedRemoval;
use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::queue::MultiQueue;
use crate::traits::{ConcurrentPriorityQueue, Key};

/// A per-thread handle that logs every removal with a coherent timestamp.
#[derive(Debug)]
pub struct InstrumentedHandle<V> {
    queue: Arc<MultiQueue<V>>,
    clock: Arc<AtomicU64>,
    log: Vec<TimestampedRemoval>,
}

impl<V: Send> InstrumentedHandle<V> {
    /// Creates a shared timestamp clock to be distributed to all handles of
    /// one experiment.
    pub fn new_clock() -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(0))
    }

    /// Creates a handle over `queue` using the shared `clock`.
    pub fn new(queue: Arc<MultiQueue<V>>, clock: Arc<AtomicU64>) -> Self {
        Self {
            queue,
            clock,
            log: Vec::new(),
        }
    }

    /// Inserts an entry (inserts are not logged; only removal ranks matter).
    pub fn insert(&self, key: Key, value: V) {
        self.queue.insert(key, value);
    }

    /// Removes an entry, logging `(timestamp, key)` on success.
    pub fn delete_min(&mut self) -> Option<(Key, V)> {
        let result = self.queue.delete_min();
        if let Some((key, _)) = result {
            let ts = self.clock.fetch_add(1, Ordering::Relaxed);
            self.log.push(TimestampedRemoval::new(ts, key));
        }
        result
    }

    /// Number of logged removals.
    pub fn logged(&self) -> usize {
        self.log.len()
    }

    /// Consumes the handle and returns its private removal log.
    pub fn into_log(self) -> Vec<TimestampedRemoval> {
        self.log
    }
}

/// How long a sticky handle keeps reusing its chosen lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StickyPolicy {
    /// Number of consecutive operations served from the same lane choice
    /// before a fresh random choice is made.
    pub ops_per_choice: usize,
}

impl Default for StickyPolicy {
    fn default() -> Self {
        Self { ops_per_choice: 4 }
    }
}

/// A per-thread handle that amortises random lane choices over several
/// consecutive operations.
#[derive(Debug)]
pub struct StickyHandle<V> {
    queue: Arc<MultiQueue<V>>,
    policy: StickyPolicy,
    rng: Xoshiro256,
    insert_lane: usize,
    insert_uses_left: usize,
}

impl<V: Send> StickyHandle<V> {
    /// Creates a sticky handle with its own RNG stream.
    ///
    /// # Panics
    ///
    /// Panics if `policy.ops_per_choice == 0`.
    pub fn new(queue: Arc<MultiQueue<V>>, policy: StickyPolicy, seed: u64) -> Self {
        assert!(policy.ops_per_choice > 0, "ops_per_choice must be positive");
        let lanes = queue.lanes();
        let mut rng = Xoshiro256::seeded(seed);
        let insert_lane = rng.next_index(lanes);
        Self {
            queue,
            policy,
            rng,
            insert_lane,
            insert_uses_left: policy.ops_per_choice,
        }
    }

    /// The lane inserts are currently stuck to (diagnostic).
    pub fn current_insert_lane(&self) -> usize {
        self.insert_lane
    }

    /// Inserts an entry. The lane hint only affects which lane is *tried
    /// first*; correctness is unaffected because the underlying queue still
    /// owns all synchronisation.
    pub fn insert(&mut self, key: Key, value: V) {
        if self.insert_uses_left == 0 {
            self.insert_lane = self.rng.next_index(self.queue.lanes());
            self.insert_uses_left = self.policy.ops_per_choice;
        }
        self.insert_uses_left -= 1;
        // The public MultiQueue API already randomises placement; stickiness
        // is an approximation of "keep hitting the same cache lines", which we
        // model by simply issuing the insert (the lane hint is advisory in
        // this safe implementation).
        self.queue.insert(key, value);
    }

    /// Removes an entry via the underlying (1 + β) rule.
    pub fn delete_min(&mut self) -> Option<(Key, V)> {
        self.queue.delete_min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiQueueConfig;
    use rank_stats::inversion::InversionCounter;

    fn shared_queue(queues: usize, beta: f64) -> Arc<MultiQueue<u64>> {
        Arc::new(MultiQueue::new(
            MultiQueueConfig::with_queues(queues)
                .with_beta(beta)
                .with_seed(7),
        ))
    }

    #[test]
    fn instrumented_handle_logs_every_successful_removal() {
        let q = shared_queue(4, 1.0);
        let clock = InstrumentedHandle::<u64>::new_clock();
        let mut h = InstrumentedHandle::new(Arc::clone(&q), clock);
        for k in 0..100u64 {
            h.insert(k, k);
        }
        let mut removed = 0;
        while h.delete_min().is_some() {
            removed += 1;
        }
        assert_eq!(removed, 100);
        assert_eq!(h.logged(), 100);
        let log = h.into_log();
        assert_eq!(log.len(), 100);
        // Timestamps are unique and increasing for a single handle.
        assert!(log.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn instrumented_logs_feed_the_inversion_counter() {
        let q = shared_queue(8, 1.0);
        let clock = InstrumentedHandle::<u64>::new_clock();
        let mut h = InstrumentedHandle::new(Arc::clone(&q), Arc::clone(&clock));
        for k in 0..10_000u64 {
            h.insert(k, k);
        }
        while h.delete_min().is_some() {}
        let mut counter = InversionCounter::new();
        counter.record_all(h.into_log());
        let summary = counter.summarize();
        assert_eq!(summary.removals, 10_000);
        assert!(summary.mean_rank >= 1.0);
        assert!(
            summary.mean_rank < 4.0 * 8.0,
            "sequential instrumented mean rank {} should be O(n)",
            summary.mean_rank
        );
    }

    #[test]
    fn two_handles_share_the_clock() {
        let q = shared_queue(4, 0.5);
        let clock = InstrumentedHandle::<u64>::new_clock();
        let mut a = InstrumentedHandle::new(Arc::clone(&q), Arc::clone(&clock));
        let mut b = InstrumentedHandle::new(Arc::clone(&q), Arc::clone(&clock));
        for k in 0..50u64 {
            a.insert(k, k);
        }
        for _ in 0..25 {
            a.delete_min();
            b.delete_min();
        }
        let log_a = a.into_log();
        let log_b = b.into_log();
        assert_eq!(log_a.len() + log_b.len(), 50);
        // Timestamps across the two logs are all distinct.
        let mut stamps: Vec<u64> = log_a
            .iter()
            .chain(log_b.iter())
            .map(|r| r.timestamp)
            .collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 50);
    }

    #[test]
    fn sticky_handle_round_trips_elements() {
        let q = shared_queue(4, 0.75);
        let mut h = StickyHandle::new(Arc::clone(&q), StickyPolicy::default(), 11);
        for k in 0..200u64 {
            h.insert(k, k);
        }
        assert!(h.current_insert_lane() < 4);
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        out.sort_unstable();
        assert_eq!(out, (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "ops_per_choice must be positive")]
    fn zero_stickiness_panics() {
        let q = shared_queue(2, 1.0);
        let _ = StickyHandle::new(q, StickyPolicy { ops_per_choice: 0 }, 0);
    }
}
