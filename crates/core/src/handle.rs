//! MultiQueue session handles and their policies.
//!
//! Registering on a [`MultiQueue`] yields an [`MqHandle`], the owned session
//! object that carries everything thread-local the (1 + β) algorithm needs:
//!
//! * a **private RNG stream**, seeded deterministically from the queue seed
//!   and the handle id (no `thread_local!` lookup on the hot path, and
//!   single-threaded runs replay exactly);
//! * optional **sticky-lane affinity** for inserts (the engineering
//!   refinement of later MultiQueue work: reuse the same lane for a bounded
//!   number of consecutive inserts, trading a little rank quality for fewer
//!   random cache misses);
//! * an optional **insert batch buffer**, published wholesale under a single
//!   lane lock;
//! * built-in **rank instrumentation**: the Section 5 measurement methodology
//!   (globally coherent timestamps per removal), collected per handle and
//!   merged offline via `rank_stats::inversion::InversionCounter`.
//!
//! All of these are selected per handle through [`HandlePolicy`], replacing
//! the former free-standing `InstrumentedHandle` and `StickyHandle` wrapper
//! types.

use std::sync::Arc;
use std::time::Instant;

use choice_obs::LatencySampler;
use rank_stats::inversion::TimestampedRemoval;
use rank_stats::rng::Xoshiro256;

use crate::obs::QueueObs;
use crate::queue::MultiQueue;
use crate::traits::{HandleStats, Key, PqHandle};

/// Per-session behaviour of an [`MqHandle`].
///
/// The default policy (`HandlePolicy::default()`) is the plain paper
/// algorithm: fresh random lane choices every operation, no buffering, no
/// instrumentation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HandlePolicy {
    /// Number of consecutive inserts served from the same sticky lane before
    /// a fresh random lane is chosen. `0` disables stickiness (every insert
    /// picks a fresh random lane, the paper's rule). On a sharded queue the
    /// sticky lane is drawn within the handle's shard.
    pub sticky_ops: usize,
    /// Explicit insert-shard pin for this session (reduced modulo the
    /// queue's shard count). `None` (the default) assigns the shard from the
    /// handle id round-robin — `id % shards` — which spreads a worker pool
    /// evenly. Irrelevant on unsharded queues (`shards == 1`).
    pub shard: Option<usize>,
    /// Insert batch size. `0` or `1` publishes every insert immediately;
    /// larger values buffer up to that many inserts privately and publish
    /// them together under one lane lock. Buffered elements are invisible to
    /// other handles until flushed; `delete_min` on the same handle and
    /// handle drop both flush.
    pub insert_batch: usize,
    /// Whether to log every successful removal with a globally coherent
    /// timestamp (drained via [`PqHandle::take_log`]).
    pub instrument: bool,
}

impl HandlePolicy {
    /// The plain paper algorithm (no stickiness, no batching, no logging).
    pub fn plain() -> Self {
        Self::default()
    }

    /// Rank-instrumented sessions (Figure 2 methodology).
    pub fn instrumented() -> Self {
        Self::default().with_instrumentation(true)
    }

    /// Sets the sticky-lane length (`0` disables).
    pub fn with_sticky_ops(mut self, sticky_ops: usize) -> Self {
        self.sticky_ops = sticky_ops;
        self
    }

    /// Sets the insert batch size (`0`/`1` disable buffering).
    pub fn with_insert_batch(mut self, insert_batch: usize) -> Self {
        self.insert_batch = insert_batch;
        self
    }

    /// Pins the session to an explicit insert shard (reduced modulo the
    /// queue's shard count at registration).
    pub fn with_shard(mut self, shard: usize) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Enables or disables removal logging.
    pub fn with_instrumentation(mut self, instrument: bool) -> Self {
        self.instrument = instrument;
        self
    }

    fn batches(&self) -> bool {
        self.insert_batch > 1
    }
}

/// An owned session over a [`MultiQueue`], created by
/// [`register`](crate::SharedPq::register) or
/// [`register_with`](MultiQueue::register_with).
///
/// Dropping the handle flushes any privately buffered inserts, so elements
/// can never be lost by ending a session.
#[derive(Debug)]
pub struct MqHandle<'q, V> {
    queue: &'q MultiQueue<V>,
    id: u64,
    policy: HandlePolicy,
    rng: Xoshiro256,
    /// The insert shard this session publishes into (always `0` when the
    /// queue is unsharded).
    shard: usize,
    /// Current sticky insert lane and how many more inserts may use it.
    sticky_lane: usize,
    sticky_left: usize,
    /// Privately buffered inserts (at most `policy.insert_batch`).
    buffer: Vec<(Key, V)>,
    /// Reusable lane-sample buffer for the configured choice rule.
    scratch: Vec<usize>,
    /// Reusable removal buffer backing [`MqHandle::delete_min_batch`] and
    /// `delete_min`; empty between operations.
    pops: Vec<(Key, V)>,
    /// Timestamped removals when `policy.instrument` is set.
    log: Vec<TimestampedRemoval>,
    stats: HandleStats,
    /// Sampled latency profiling, present iff the queue has telemetry
    /// attached (see [`MultiQueue::attach_obs`]).
    obs: Option<HandleObs>,
}

/// The handle's share of the queue's telemetry: the per-queue bundle plus a
/// private 1-in-N sampler (deterministic, no RNG state).
#[derive(Debug)]
struct HandleObs {
    queue_obs: Arc<QueueObs>,
    sampler: LatencySampler,
}

impl<'q, V> MqHandle<'q, V> {
    pub(crate) fn new(
        queue: &'q MultiQueue<V>,
        id: u64,
        rng: Xoshiro256,
        policy: HandlePolicy,
    ) -> Self {
        let shards = queue.config().shards;
        let shard = match policy.shard {
            Some(pinned) => pinned % shards,
            None => (id % shards as u64) as usize,
        };
        Self {
            queue,
            id,
            policy,
            rng,
            shard,
            sticky_lane: 0,
            sticky_left: 0,
            // Cap the preallocation: insert_batch is an unvalidated public
            // knob and usize::MAX is the natural "unbounded" spelling; let
            // the buffer grow past 1024 on demand instead of panicking with
            // a capacity overflow at registration.
            buffer: Vec::with_capacity(if policy.batches() {
                policy.insert_batch.min(1024)
            } else {
                0
            }),
            scratch: Vec::with_capacity(queue.config().choice.max_samples().min(1024)),
            pops: Vec::new(),
            log: Vec::new(),
            stats: HandleStats::default(),
            obs: queue.obs().map(|o| HandleObs {
                queue_obs: Arc::clone(o),
                sampler: LatencySampler::new(o.sample_every()),
            }),
        }
    }

    /// Starts a sampled latency measurement: `Some` on every N-th operation
    /// of a telemetry-attached queue, `None` (one branch, no clock read)
    /// otherwise.
    #[inline]
    fn sample_start(&mut self) -> Option<Instant> {
        match &mut self.obs {
            Some(obs) => obs.sampler.tick().then(Instant::now),
            None => None,
        }
    }

    /// The id allocated to this handle at registration (dense, starting at 0
    /// per queue). Together with the queue seed it determines the handle's
    /// RNG stream.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The policy this handle was registered with.
    pub fn policy(&self) -> HandlePolicy {
        self.policy
    }

    /// The queue this handle is registered on.
    pub fn queue(&self) -> &'q MultiQueue<V> {
        self.queue
    }

    /// The insert shard this session publishes into (`0` on unsharded
    /// queues). Pinned by [`HandlePolicy::with_shard`], otherwise assigned
    /// round-robin from the handle id.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of privately buffered (not yet published) inserts.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The lane the next sticky insert would target (diagnostic; meaningful
    /// only when `policy.sticky_ops > 0`).
    pub fn current_insert_lane(&self) -> usize {
        self.sticky_lane
    }

    /// The sticky lane hint for one insert, refreshing it (within the
    /// session's shard, over the currently active lanes) when exhausted. A
    /// hint that goes stale across a shrink is simply ignored by the insert
    /// path.
    fn insert_hint(&mut self) -> Option<usize> {
        if self.policy.sticky_ops == 0 {
            return None;
        }
        if self.sticky_left == 0 {
            self.sticky_lane =
                self.queue
                    .stride_lane(&mut self.rng, self.shard, self.queue.active_lanes());
            self.sticky_left = self.policy.sticky_ops;
        }
        self.sticky_left -= 1;
        Some(self.sticky_lane)
    }

    /// Publishes the private buffer; the single flush path shared by
    /// [`PqHandle::flush`] and `Drop` (no `V: Send` bound, which `Drop`
    /// cannot require).
    fn flush_buffer(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let hint = self.insert_hint();
        // Split borrows: buffer, rng and stats are distinct fields.
        let Self {
            queue,
            rng,
            buffer,
            shard,
            stats,
            ..
        } = self;
        stats.contended_retries += queue.insert_batch_with(rng, *shard, hint, buffer);
    }
}

impl<V: Send> MqHandle<'_, V> {
    /// Removes up to `max` small-keyed entries in one batched operation,
    /// returning them (in ascending key order) as a draining iterator over
    /// the handle's reusable pop buffer.
    ///
    /// The batch refinement mirrors insert batching: the choice rule samples
    /// lanes once, the best lane is locked **once**, and up to `max` elements
    /// are drained under that single lock — amortising both the random
    /// choices and the lock traffic over the batch. When the sampled lanes
    /// are empty the symmetric steal path scans for the globally best lane,
    /// so a non-empty queue always yields at least one element. Because the
    /// whole batch comes from one lane, rank quality degrades gracefully
    /// with `max` (see `DESIGN.md`, "Choice rules & batching").
    ///
    /// Equivalent to [`PqHandle::delete_min_batch_into`] with a handle-owned
    /// buffer; `delete_min_batch(1)` is observationally identical to
    /// [`PqHandle::delete_min`].
    ///
    /// # Example
    ///
    /// ```
    /// use choice_pq::{MultiQueue, MultiQueueConfig, PqHandle, SharedPq};
    ///
    /// let queue = MultiQueue::<u64>::new(MultiQueueConfig::with_queues(1));
    /// let mut session = queue.register();
    /// for key in [5, 1, 4, 2, 3] {
    ///     session.insert(key, key);
    /// }
    /// let keys: Vec<u64> = session.delete_min_batch(3).map(|(k, _)| k).collect();
    /// assert_eq!(keys, vec![1, 2, 3]);
    /// ```
    pub fn delete_min_batch(&mut self, max: usize) -> std::vec::Drain<'_, (Key, V)> {
        debug_assert!(self.pops.is_empty(), "pop buffer leaked between ops");
        let mut pops = std::mem::take(&mut self.pops);
        self.delete_min_batch_into(max, &mut pops);
        self.pops = pops;
        self.pops.drain(..)
    }
}

impl<V: Send> PqHandle<V> for MqHandle<'_, V> {
    fn insert(&mut self, key: Key, value: V) {
        crate::traits::check_key(key);
        self.stats.inserts += 1;
        let start = self.sample_start();
        if self.policy.batches() {
            self.buffer.push((key, value));
            if self.buffer.len() >= self.policy.insert_batch {
                self.flush();
            }
        } else {
            let hint = self.insert_hint();
            self.stats.contended_retries +=
                self.queue
                    .insert_with(&mut self.rng, self.shard, hint, key, value);
        }
        if let (Some(t0), Some(obs)) = (start, &self.obs) {
            obs.queue_obs
                .insert_ns
                .record(t0.elapsed().as_nanos() as u64);
        }
    }

    fn delete_min(&mut self) -> Option<(Key, V)> {
        let start = self.sample_start();
        // A session always observes its own inserts: publish the private
        // buffer before removing.
        if !self.buffer.is_empty() {
            self.flush();
        }
        debug_assert!(self.pops.is_empty(), "pop buffer leaked between ops");
        let outcome = self.queue.drain_best_with(
            &mut self.rng,
            &mut self.scratch,
            1,
            &mut self.pops,
            self.policy.instrument.then_some(&mut self.log),
        );
        self.stats.contended_retries += outcome.contended_retries;
        let result = self.pops.pop();
        match &result {
            Some(_) => self.stats.removals += 1,
            None => {
                self.stats.failed_removals += 1;
                if outcome.observed_empty {
                    self.stats.empty_polls += 1;
                }
            }
        }
        if let (Some(t0), Some(obs)) = (start, &self.obs) {
            let elapsed = t0.elapsed().as_nanos() as u64;
            obs.queue_obs.delete_min_ns.record(elapsed);
            // The shadow rank probe rides the same sampled tick: the clock
            // reads are already paid, the probe adds one relaxed top load
            // per active lane (see `MultiQueue::lane_rank_bound`).
            if let Some((key, _)) = &result {
                obs.queue_obs
                    .rank_error
                    .record(self.queue.lane_rank_bound(*key));
            }
            if let Some(ring) = obs.queue_obs.span_ring() {
                // In-process traced mode: only the queue-op stage carries
                // time. The trace id folds the handle id over the removal
                // count so concurrent sessions stay distinguishable.
                let trace_id = (self.id << 40) | (self.stats.removals & 0xFF_FFFF_FFFF);
                let now_ns = obs.queue_obs.recorder().now_ns();
                ring.record(trace_id, 0, now_ns, [0, 0, 0, elapsed, 0]);
            }
        }
        result
    }

    fn delete_min_batch_into(&mut self, max: usize, out: &mut Vec<(Key, V)>) -> usize {
        if max == 0 {
            return 0;
        }
        let start = self.sample_start();
        if !self.buffer.is_empty() {
            self.flush();
        }
        let drained_from = out.len();
        let outcome = self.queue.drain_best_with(
            &mut self.rng,
            &mut self.scratch,
            max,
            out,
            self.policy.instrument.then_some(&mut self.log),
        );
        self.stats.contended_retries += outcome.contended_retries;
        if let (Some(t0), Some(obs)) = (start, &self.obs) {
            let elapsed = t0.elapsed().as_nanos() as u64;
            obs.queue_obs.delete_min_batch_ns.record(elapsed);
            // Probe the batch's first (smallest) key: the rest of the batch
            // came from the same lane under the same lock, so its head is
            // the removal the rank bound speaks about.
            if let Some((key, _)) = out.get(drained_from) {
                obs.queue_obs
                    .rank_error
                    .record(self.queue.lane_rank_bound(*key));
            }
            if let Some(ring) = obs.queue_obs.span_ring() {
                let trace_id = (self.id << 40) | (self.stats.removals & 0xFF_FFFF_FFFF);
                let now_ns = obs.queue_obs.recorder().now_ns();
                ring.record(trace_id, 0, now_ns, [0, 0, 0, elapsed, 0]);
            }
        }
        if outcome.drained == 0 {
            self.stats.failed_removals += 1;
            if outcome.observed_empty {
                self.stats.empty_polls += 1;
            }
            return 0;
        }
        self.stats.removals += outcome.drained as u64;
        outcome.drained
    }

    fn flush(&mut self) {
        self.flush_buffer();
    }

    fn stats(&self) -> HandleStats {
        self.stats
    }

    fn take_log(&mut self) -> Vec<TimestampedRemoval> {
        std::mem::take(&mut self.log)
    }
}

impl<V> Drop for MqHandle<'_, V> {
    fn drop(&mut self) {
        self.flush_buffer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MultiQueueConfig;
    use crate::traits::SharedPq;
    use rank_stats::inversion::InversionCounter;

    fn queue(queues: usize, beta: f64) -> MultiQueue<u64> {
        MultiQueue::new(
            MultiQueueConfig::with_queues(queues)
                .with_beta(beta)
                .with_seed(7),
        )
    }

    #[test]
    fn instrumented_policy_logs_every_successful_removal() {
        let q = queue(4, 1.0);
        let mut h = q.register_with(HandlePolicy::instrumented());
        for k in 0..100u64 {
            h.insert(k, k);
        }
        let mut removed = 0;
        while h.delete_min().is_some() {
            removed += 1;
        }
        assert_eq!(removed, 100);
        let log = h.take_log();
        assert_eq!(log.len(), 100);
        // Timestamps are unique and increasing for a single handle.
        assert!(log.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
        // Draining the log leaves it empty.
        assert!(h.take_log().is_empty());
    }

    #[test]
    fn instrumented_logs_feed_the_inversion_counter() {
        let q = queue(8, 1.0);
        let mut h = q.register_with(HandlePolicy::instrumented());
        for k in 0..10_000u64 {
            h.insert(k, k);
        }
        while h.delete_min().is_some() {}
        let mut counter = InversionCounter::new();
        counter.record_all(h.take_log());
        let summary = counter.summarize();
        assert_eq!(summary.removals, 10_000);
        assert!(summary.mean_rank >= 1.0);
        assert!(
            summary.mean_rank < 4.0 * 8.0,
            "sequential instrumented mean rank {} should be O(n)",
            summary.mean_rank
        );
    }

    #[test]
    fn two_instrumented_handles_share_the_queue_clock() {
        let q = queue(4, 0.5);
        let mut a = q.register_with(HandlePolicy::instrumented());
        let mut b = q.register_with(HandlePolicy::instrumented());
        for k in 0..50u64 {
            a.insert(k, k);
        }
        for _ in 0..25 {
            a.delete_min();
            b.delete_min();
        }
        let log_a = a.take_log();
        let log_b = b.take_log();
        assert_eq!(log_a.len() + log_b.len(), 50);
        // Timestamps across the two logs are all distinct.
        let mut stamps: Vec<u64> = log_a
            .iter()
            .chain(log_b.iter())
            .map(|r| r.timestamp)
            .collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 50);
    }

    #[test]
    fn sticky_handle_round_trips_elements() {
        let q = queue(4, 0.75);
        let mut h = q.register_with(HandlePolicy::default().with_sticky_ops(4));
        for k in 0..200u64 {
            h.insert(k, k);
        }
        assert!(h.current_insert_lane() < 4);
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        out.sort_unstable();
        assert_eq!(out, (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn sticky_inserts_land_on_the_sticky_lane() {
        // With stickiness spanning all inserts and no contention, everything
        // lands on one lane — the cache-locality behaviour stickiness buys.
        let q = queue(8, 1.0);
        let mut h = q.register_with(HandlePolicy::default().with_sticky_ops(usize::MAX));
        for k in 0..64u64 {
            h.insert(k, k);
        }
        let lengths = q.lane_lengths();
        assert_eq!(lengths.iter().sum::<usize>(), 64);
        assert_eq!(
            lengths.iter().filter(|&&l| l > 0).count(),
            1,
            "all uncontended sticky inserts should share one lane: {lengths:?}"
        );
    }

    #[test]
    fn batch_buffer_publishes_on_threshold_flush_and_drop() {
        let q = queue(4, 1.0);
        let mut h = q.register_with(HandlePolicy::default().with_insert_batch(8));
        for k in 0..7u64 {
            h.insert(k, k);
        }
        assert_eq!(h.buffered(), 7);
        assert_eq!(q.approx_len(), 0, "buffered inserts are private");
        h.insert(7, 7);
        assert_eq!(h.buffered(), 0, "reaching the batch size publishes");
        assert_eq!(q.approx_len(), 8);

        h.insert(8, 8);
        h.flush();
        assert_eq!(q.approx_len(), 9, "explicit flush publishes");

        h.insert(9, 9);
        drop(h);
        assert_eq!(q.approx_len(), 10, "drop publishes the remainder");
        let mut h = q.register();
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        out.sort_unstable();
        assert_eq!(out, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn drop_flush_and_explicit_flush_choose_the_same_lane() {
        // Regression: Drop used to bypass the sticky-hint refresh and dump
        // the tail batch onto the initial lane 0. Two identically seeded
        // handles, one flushed explicitly and one flushed by drop, must
        // publish to the same lane.
        let policy = HandlePolicy::default()
            .with_sticky_ops(3)
            .with_insert_batch(16);
        let q1 = queue(8, 1.0);
        let q2 = queue(8, 1.0);
        let mut h1 = q1.register_with(policy);
        let mut h2 = q2.register_with(policy);
        for k in 0..5u64 {
            h1.insert(k, k);
            h2.insert(k, k);
        }
        h1.flush();
        drop(h2);
        assert_eq!(q1.approx_len(), 5);
        assert_eq!(q2.approx_len(), 5);
        assert_eq!(
            q1.lane_lengths(),
            q2.lane_lengths(),
            "drop must publish through the same sticky-hint path as flush"
        );
    }

    #[test]
    fn batched_flush_goes_wait_free_on_a_held_single_lane() {
        // Regression (twice over): with every lane held, insert_batch_with
        // used to busy-spin forever, then to block on the holder. With the
        // side-buffer it must complete *while* the lane is still hostage —
        // the elements ride the wait-free MPSC path and are folded into the
        // heap when the holder releases.
        let q = std::sync::Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(1)
                .with_seed(3)
                .with_max_retries(4),
        ));
        let q2 = std::sync::Arc::clone(&q);
        let holder = std::thread::spawn(move || {
            q2.with_lane_locked(0, || {
                std::thread::sleep(std::time::Duration::from_millis(100));
            })
        });
        // Give the holder time to take the borrow, then flush against it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut h = q.register_with(HandlePolicy::default().with_insert_batch(8));
        for k in 0..5u64 {
            h.insert(k, k);
        }
        h.flush();
        assert_eq!(
            q.approx_len(),
            5,
            "the flush must publish (and credit len) without waiting for the holder"
        );
        holder.join().unwrap();
        assert_eq!(q.approx_len(), 5);
        assert_eq!(q.lane_lengths(), vec![5], "release folds the side-buffer");
    }

    #[test]
    fn batch_delete_flushes_the_insert_buffer_first() {
        // A session must observe its own buffered inserts through the batch
        // path too.
        let q = queue(4, 1.0);
        let mut h = q.register_with(HandlePolicy::default().with_insert_batch(64));
        h.insert(1, 10);
        h.insert(2, 20);
        assert_eq!(q.approx_len(), 0, "buffered inserts are private");
        let got: Vec<(u64, u64)> = h.delete_min_batch(8).collect();
        assert!(!got.is_empty());
        assert!(got.contains(&(1, 10)) || got.contains(&(2, 20)));
    }

    #[test]
    fn batch_delete_logs_every_removal_when_instrumented() {
        let q = queue(4, 1.0);
        let mut h = q.register_with(HandlePolicy::instrumented());
        for k in 0..100u64 {
            h.insert(k, k);
        }
        let mut removed = 0usize;
        let mut out = Vec::new();
        while h.delete_min_batch_into(7, &mut out) > 0 {
            removed = out.len();
        }
        assert_eq!(removed, 100);
        let log = h.take_log();
        assert_eq!(log.len(), 100);
        // One coherent timestamp per removal, in removal order.
        assert!(log.windows(2).all(|w| w[0].timestamp < w[1].timestamp));
        // Logged keys match the popped keys in order.
        assert!(log
            .iter()
            .zip(out.iter())
            .all(|(entry, (key, _))| entry.key == *key));
    }

    #[test]
    fn batch_delete_updates_stats_like_single_deletes() {
        let q = queue(4, 1.0);
        let mut h = q.register();
        for k in 0..10u64 {
            h.insert(k, k);
        }
        let mut out = Vec::new();
        let mut removed = 0u64;
        loop {
            let n = h.delete_min_batch_into(4, &mut out) as u64;
            if n == 0 {
                break;
            }
            removed += n;
        }
        assert_eq!(removed, 10);
        let stats = h.stats();
        assert_eq!(stats.inserts, 10);
        assert_eq!(stats.removals, 10);
        assert_eq!(
            stats.failed_removals, 1,
            "the final empty batch counts once"
        );
        // A zero-sized batch is a no-op, not a failed removal.
        assert_eq!(h.delete_min_batch_into(0, &mut out), 0);
        assert_eq!(h.stats().failed_removals, 1);
    }

    #[test]
    fn delete_min_observes_the_handles_own_buffer() {
        let q = queue(4, 1.0);
        let mut h = q.register_with(HandlePolicy::default().with_insert_batch(64));
        h.insert(1, 10);
        assert_eq!(q.approx_len(), 0);
        // The buffered element must be visible to this session's removal.
        assert_eq!(h.delete_min(), Some((1, 10)));
        assert_eq!(h.delete_min(), None);
    }

    #[test]
    fn empty_polls_count_quiescent_empty_observations() {
        let q = queue(4, 1.0);
        let mut h = q.register();
        // Empty queue: every failed removal is an empty poll, no retries.
        assert_eq!(h.delete_min(), None);
        let mut out = Vec::new();
        assert_eq!(h.delete_min_batch_into(8, &mut out), 0);
        let stats = h.stats();
        assert_eq!(stats.failed_removals, 2);
        assert_eq!(stats.empty_polls, 2);
        assert_eq!(stats.contended_retries, 0);
        // A zero-sized batch is a no-op: neither a failure nor an empty poll.
        assert_eq!(h.delete_min_batch_into(0, &mut out), 0);
        assert_eq!(h.stats().empty_polls, 2);
        // Successful removals never count as empty polls.
        h.insert(1, 1);
        assert_eq!(h.delete_min(), Some((1, 1)));
        assert_eq!(h.stats().empty_polls, 2);
        assert_eq!(h.stats().failed_removals, 2);
    }

    #[test]
    fn contended_retries_count_lost_races_not_emptiness() {
        // One lane, held hostage for a while: the delete must burn its retry
        // budget (counted), then succeed through the blocking steal path —
        // and the failure mode must NOT be reported as emptiness.
        let q = std::sync::Arc::new(MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(1)
                .with_seed(3)
                .with_max_retries(8),
        ));
        {
            let mut h = q.register();
            h.insert(5, 50);
        }
        let q2 = std::sync::Arc::clone(&q);
        let holder = std::thread::spawn(move || {
            q2.with_lane_locked(0, || {
                std::thread::sleep(std::time::Duration::from_millis(80));
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut h = q.register();
        assert_eq!(h.delete_min(), Some((5, 50)));
        holder.join().unwrap();
        let stats = h.stats();
        assert_eq!(stats.removals, 1);
        assert_eq!(stats.empty_polls, 0);
        assert!(
            stats.contended_retries >= 1,
            "the held lane must be visible as contended retries: {stats:?}"
        );
    }

    #[test]
    fn register_policy_honours_the_policy_on_the_multiqueue() {
        use crate::traits::SharedPq;
        let q = queue(4, 1.0);
        let h = q.register_policy(HandlePolicy::default().with_insert_batch(16));
        assert_eq!(h.policy().insert_batch, 16);
    }

    #[test]
    fn policy_builder_combines() {
        let p = HandlePolicy::plain()
            .with_sticky_ops(4)
            .with_insert_batch(16)
            .with_shard(3)
            .with_instrumentation(true);
        assert_eq!(
            p,
            HandlePolicy {
                sticky_ops: 4,
                shard: Some(3),
                insert_batch: 16,
                instrument: true
            }
        );
        let q = queue(4, 1.0);
        let h = q.register_with(p);
        assert_eq!(h.policy(), p);
        assert_eq!(h.queue().lanes(), 4);
        // An unsharded queue reduces every pin to shard 0.
        assert_eq!(h.shard(), 0);
    }

    #[test]
    fn shard_assignment_is_round_robin_unless_pinned() {
        let q =
            MultiQueue::<u64>::new(MultiQueueConfig::with_queues(8).with_shards(4).with_seed(7));
        let a = q.register();
        let b = q.register();
        let c = q.register_with(HandlePolicy::default().with_shard(7));
        assert_eq!(a.shard(), 0);
        assert_eq!(b.shard(), 1);
        assert_eq!(c.shard(), 3, "pins reduce modulo the shard count");
    }
}
