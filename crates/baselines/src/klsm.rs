//! A k-LSM-style deterministic-relaxed priority queue.
//!
//! The k-LSM of Wimmer et al. combines per-thread log-structured merge trees
//! with a shared relaxed component, and guarantees that `delete_min` returns
//! one of the `k·T` smallest elements (for `T` threads and relaxation factor
//! `k`). The paper benchmarks against it with `k = 256`.
//!
//! This reproduction keeps the user-visible semantics — a *deterministic*
//! bound on how stale a returned element can be — with a simpler internal
//! organisation: each thread slot owns a small local buffer of at most `k`
//! elements that only its owner touches without contention, plus a shared
//! exact heap. `delete_min` first consults the caller's local buffer and the
//! shared heap's top and takes the smaller; elements overflowing the local
//! buffer are spilled to the shared heap. The relaxation bound is therefore
//! `k·(T − 1)`: an element returned from the shared heap can be preceded by at
//! most `k` smaller elements in each *other* thread's local buffer.
//!
//! The per-thread structure maps directly onto the session API: registering a
//! [`KLsmHandle`] assigns the session a thread slot (round-robin), replacing
//! the former `thread_local!` slot cache.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use choice_pq::{check_key, HandleStats, Key, PqHandle, SharedPq};
use seq_pq::{BinaryHeap, SequentialPriorityQueue};

/// Configuration of a [`KLsmQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KLsmConfig {
    /// Relaxation factor `k`: the maximum number of elements a thread may
    /// keep buffered locally. The paper uses 256.
    pub relaxation: usize,
    /// Number of thread slots (local buffers). Sessions are assigned slots
    /// round-robin, so this should be at least the worker thread count.
    pub thread_slots: usize,
}

impl KLsmConfig {
    /// Creates a configuration with the paper's default relaxation (256).
    ///
    /// # Panics
    ///
    /// Panics if `thread_slots == 0`.
    pub fn for_threads(thread_slots: usize) -> Self {
        assert!(thread_slots > 0, "need at least one thread slot");
        Self {
            relaxation: 256,
            thread_slots,
        }
    }

    /// Sets the relaxation factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `relaxation == 0`.
    pub fn with_relaxation(mut self, relaxation: usize) -> Self {
        assert!(relaxation > 0, "relaxation must be positive");
        self.relaxation = relaxation;
        self
    }

    /// The worst-case rank bound of `delete_min` under this configuration:
    /// `k·(slots − 1) + 1` (rank 1 = exact).
    pub fn rank_bound(&self) -> usize {
        self.relaxation * (self.thread_slots - 1) + 1
    }
}

#[derive(Debug)]
struct LocalBuffer<V> {
    heap: BinaryHeap<V>,
}

/// A deterministic-relaxed concurrent priority queue in the k-LSM family.
#[derive(Debug)]
pub struct KLsmQueue<V> {
    config: KLsmConfig,
    locals: Vec<Mutex<LocalBuffer<V>>>,
    shared: Mutex<BinaryHeap<V>>,
    /// Cheap hint of the shared heap's top key (u64::MAX when empty).
    shared_top: AtomicU64,
    len: AtomicUsize,
    /// Round-robin assignment of registered sessions to thread slots.
    next_slot: AtomicUsize,
}

const EMPTY_TOP: u64 = u64::MAX;

impl<V> KLsmQueue<V> {
    /// Creates an empty queue.
    pub fn new(config: KLsmConfig) -> Self {
        Self {
            locals: (0..config.thread_slots)
                .map(|_| {
                    Mutex::new(LocalBuffer {
                        heap: BinaryHeap::new(),
                    })
                })
                .collect(),
            shared: Mutex::new(BinaryHeap::new()),
            shared_top: AtomicU64::new(EMPTY_TOP),
            len: AtomicUsize::new(0),
            config,
            next_slot: AtomicUsize::new(0),
        }
    }

    /// The configuration of this queue.
    pub fn config(&self) -> &KLsmConfig {
        &self.config
    }

    fn refresh_shared_top(&self, heap: &BinaryHeap<V>) {
        self.shared_top
            .store(heap.peek_key().unwrap_or(EMPTY_TOP), Ordering::Relaxed);
    }

    fn insert_at(&self, slot: usize, key: Key, value: V) {
        check_key(key);
        let mut local = self.locals[slot].lock();
        local.heap.push(key, value);
        // Spill the *largest-key excess* cheaply: if the buffer exceeds k,
        // move entries to the shared heap. Popping gives the smallest, so to
        // keep the smallest locally we instead spill when over capacity by
        // moving the entire buffer's tail; for simplicity and to preserve the
        // rank bound we spill the freshly popped minimum elements into the
        // shared heap until the buffer is back at capacity (the bound only
        // requires that at most k elements are invisible to other threads).
        if local.heap.len() > self.config.relaxation {
            let mut shared = self.shared.lock();
            while local.heap.len() > self.config.relaxation {
                if let Some((k, v)) = local.heap.pop() {
                    shared.push(k, v);
                } else {
                    break;
                }
            }
            self.refresh_shared_top(&shared);
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    fn delete_min_at(&self, slot: usize) -> Option<(Key, V)> {
        let result = {
            let mut local = self.locals[slot].lock();
            let local_top = local.heap.peek_key();
            let shared_top = self.shared_top.load(Ordering::Relaxed);
            match local_top {
                // Local element wins (or shared is empty): pop locally without
                // touching shared state at all — this is the scalable path.
                Some(lt) if lt <= shared_top => local.heap.pop(),
                _ => {
                    // Shared heap appears to have the smaller top (or local is
                    // empty): take from the shared heap; fall back to local if
                    // the shared heap raced to empty.
                    let mut shared = self.shared.lock();
                    let from_shared = shared.pop();
                    self.refresh_shared_top(&shared);
                    drop(shared);
                    from_shared.or_else(|| local.heap.pop())
                }
            }
        };
        if result.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
            return result;
        }
        // Both our local buffer and the shared heap were empty; steal from the
        // other thread slots so the structure can always be fully drained.
        for other in 0..self.locals.len() {
            let mut buf = self.locals[other].lock();
            if let Some(entry) = buf.heap.pop() {
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(entry);
            }
        }
        None
    }
}

/// A session over a [`KLsmQueue`], pinned to one thread slot for its
/// lifetime.
#[derive(Debug)]
pub struct KLsmHandle<'q, V> {
    queue: &'q KLsmQueue<V>,
    slot: usize,
    stats: HandleStats,
}

impl<V> KLsmHandle<'_, V> {
    /// The thread slot this session was assigned at registration.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl<V: Send> PqHandle<V> for KLsmHandle<'_, V> {
    fn insert(&mut self, key: Key, value: V) {
        self.stats.inserts += 1;
        self.queue.insert_at(self.slot, key, value);
    }

    fn delete_min(&mut self) -> Option<(Key, V)> {
        let result = self.queue.delete_min_at(self.slot);
        if result.is_some() {
            self.stats.removals += 1;
        } else {
            // `delete_min_at` ends with an exhaustive locked steal scan over
            // every slot, so `None` is a quiescent-empty observation.
            self.stats.failed_removals += 1;
            self.stats.empty_polls += 1;
        }
        result
    }

    fn stats(&self) -> HandleStats {
        self.stats
    }
}

impl<V: Send> SharedPq<V> for KLsmQueue<V> {
    type Handle<'q>
        = KLsmHandle<'q, V>
    where
        Self: 'q;

    fn register(&self) -> Self::Handle<'_> {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.config.thread_slots;
        KLsmHandle {
            queue: self,
            slot,
            stats: HandleStats::default(),
        }
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn name(&self) -> String {
        format!("klsm(k={})", self.config.relaxation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn config_rank_bound() {
        let cfg = KLsmConfig::for_threads(4).with_relaxation(8);
        assert_eq!(cfg.relaxation, 8);
        assert_eq!(cfg.rank_bound(), 8 * 3 + 1);
        assert_eq!(KLsmConfig::for_threads(1).rank_bound(), 1);
    }

    #[test]
    #[should_panic(expected = "relaxation must be positive")]
    fn zero_relaxation_panics() {
        let _ = KLsmConfig::for_threads(2).with_relaxation(0);
    }

    #[test]
    fn sessions_take_slots_round_robin() {
        let q: KLsmQueue<u64> = KLsmQueue::new(KLsmConfig::for_threads(3));
        assert_eq!(q.register().slot(), 0);
        assert_eq!(q.register().slot(), 1);
        assert_eq!(q.register().slot(), 2);
        assert_eq!(q.register().slot(), 0, "slots wrap around");
    }

    #[test]
    fn single_slot_is_exact() {
        // With one thread slot there is no other buffer to hide elements in,
        // so the queue behaves exactly.
        let q = KLsmQueue::new(KLsmConfig::for_threads(1).with_relaxation(16));
        let mut h = q.register();
        for k in [8u64, 3, 5, 1, 9, 2] {
            h.insert(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn drains_everything_exactly_once() {
        let q = KLsmQueue::new(KLsmConfig::for_threads(4).with_relaxation(16));
        let mut h = q.register();
        for k in 0..5_000u64 {
            h.insert(k, k);
        }
        assert_eq!(q.approx_len(), 5_000);
        let mut seen = HashSet::new();
        while let Some((k, _)) = h.delete_min() {
            assert!(seen.insert(k), "duplicate {k}");
        }
        assert_eq!(seen.len(), 5_000);
        assert!(q.is_empty());
    }

    #[test]
    fn single_threaded_relaxation_respects_bound() {
        // A single session occupies one slot, so every element it inserted is
        // either in its own buffer or the shared heap; returned keys must be
        // within the configured rank bound of the true minimum.
        let cfg = KLsmConfig::for_threads(4).with_relaxation(8);
        let bound = cfg.rank_bound() as u64;
        let q = KLsmQueue::new(cfg);
        let mut h = q.register();
        for k in 0..1_000u64 {
            h.insert(k, k);
        }
        let mut remaining_min = 0u64;
        while let Some((k, _)) = h.delete_min() {
            assert!(
                k < remaining_min + bound,
                "key {k} violates the deterministic rank bound {bound} (min {remaining_min})"
            );
            if k == remaining_min {
                remaining_min += 1;
            }
        }
    }

    #[test]
    fn concurrent_conservation() {
        let threads = 4;
        let per_thread = 2_000u64;
        let q = KLsmQueue::new(KLsmConfig::for_threads(threads).with_relaxation(64));
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..threads {
                let q = &q;
                workers.push(scope.spawn(move || {
                    let mut handle = q.register();
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        if i % 2 == 1 {
                            if let Some((k, _)) = handle.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            workers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: HashSet<u64> = removed.into_iter().collect();
        let mut h = q.register();
        while let Some((k, _)) = h.delete_min() {
            assert!(all.insert(k), "duplicate key {k}");
        }
        assert_eq!(all.len() as u64, threads as u64 * per_thread);
    }

    #[test]
    fn name_includes_relaxation() {
        let q: KLsmQueue<u64> = KLsmQueue::new(KLsmConfig::for_threads(2).with_relaxation(256));
        assert_eq!(q.name(), "klsm(k=256)");
    }
}
