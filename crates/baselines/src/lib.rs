//! Baseline concurrent priority queues the paper compares against.
//!
//! Figure 1 and Figure 3 of the paper benchmark the (1 + β) MultiQueue against
//! three families of existing structures. This crate provides a working
//! implementation of each family behind the same handle-based session API
//! ([`SharedPq`] / [`PqHandle`]):
//!
//! * [`CoarseHeap`] — a single binary heap behind one
//!   global lock: the textbook *exact* queue whose sequential bottleneck
//!   motivates relaxation in the first place.
//! * [`SkipListQueue`] — a centralized,
//!   *exact*, skiplist-based queue in the spirit of Lindén–Jonsson: removals
//!   mark nodes logically deleted and physical cleanup is batched, so
//!   `delete_min` does very little work under the lock. It remains
//!   centralized, which is the property the comparison relies on.
//! * [`KLsmQueue`] — a deterministic-relaxed queue in the
//!   spirit of the k-LSM: per-session buffers plus a shared spill structure,
//!   guaranteeing that `delete_min` returns one of the `k + T·b` smallest
//!   elements (where `T` is the session count and `b` the local buffer
//!   bound). Its sessions ([`KLsmHandle`]) are pinned to a
//!   thread slot at registration.
//!
//! The exact centralized queues implement [`FlatOps`](choice_pq::FlatOps)
//! (their operations are intrinsically shared), so their sessions are
//! [`FlatHandle`](choice_pq::FlatHandle)s carrying only statistics.
//!
//! The substitutions relative to the paper's exact comparators (which are
//! lock-free CAS-based structures) are documented in `DESIGN.md`; what is
//! preserved is the *semantic class* (exact centralized vs. deterministic
//! bounded relaxation vs. randomized relaxation) and the coarse performance
//! shape (centralized structures serialise `delete_min`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarse_heap;
pub mod klsm;
pub mod skiplist_queue;

pub use coarse_heap::CoarseHeap;
pub use klsm::{KLsmConfig, KLsmHandle, KLsmQueue};
pub use skiplist_queue::SkipListQueue;

/// Re-export of the shared session traits so downstream code can depend only
/// on this crate when it wants "all the queues".
pub use choice_pq::{DynSharedPq, HandleStats, Key, PqHandle, SharedPq};
