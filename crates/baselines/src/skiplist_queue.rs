//! A centralized skiplist-based priority queue (Lindén–Jonsson-style,
//! simplified).
//!
//! The Lindén–Jonsson queue keeps all elements in one skiplist ordered by key;
//! `delete_min` *logically* deletes the head by setting a flag and only
//! occasionally performs the more expensive physical unlinking, in batches,
//! which is where its low memory contention comes from. The original is
//! lock-free (CAS on node pointers); this reproduction keeps the same
//! structural ideas — one shared sorted skiplist, logical deletion markers,
//! batched physical cleanup — but protects pointer updates with a lock, as
//! permitted by the substitution policy in `DESIGN.md`. What matters for the
//! paper's comparison is that the structure is *centralized and exact*: every
//! `delete_min` fights over the same head region, so it cannot scale the way
//! the distributed MultiQueue does.
//!
//! Like the coarse heap, the structure is *flat* — all state is shared — so
//! its [`SharedPq`] sessions are [`FlatHandle`]s via [`FlatOps`].

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use choice_pq::{FlatHandle, FlatOps, Key, SharedPq};
use seq_pq::{SequentialPriorityQueue, SkipListPq};

/// How many logically deleted heads may accumulate before a physical cleanup
/// pass is performed.
const CLEANUP_BATCH: usize = 32;

#[derive(Debug)]
struct Inner<V> {
    /// The ordered element store.
    list: SkipListPq<V>,
    /// Entries popped from `list` but not yet handed out: the "logically
    /// deleted prefix" that physical cleanup works through. Kept sorted
    /// because entries are appended in ascending key order.
    pending: std::collections::VecDeque<(Key, V)>,
}

/// An exact, centralized skiplist priority queue with batched head cleanup.
#[derive(Debug)]
pub struct SkipListQueue<V> {
    inner: Mutex<Inner<V>>,
    len: AtomicUsize,
}

impl<V> SkipListQueue<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_seed(0x51C2_11D7)
    }

    /// Creates an empty queue with an explicit skiplist tower seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            inner: Mutex::new(Inner {
                list: SkipListPq::with_seed(seed),
                pending: std::collections::VecDeque::new(),
            }),
            len: AtomicUsize::new(0),
        }
    }
}

impl<V> Default for SkipListQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> FlatOps<V> for SkipListQueue<V> {
    fn flat_insert(&self, key: Key, value: V) {
        let mut inner = self.inner.lock();
        // An insert below the pending prefix must bypass the prefix, otherwise
        // it would be returned out of order relative to pending entries.
        inner.list.push(key, value);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    fn flat_delete_min(&self) -> Option<(Key, V)> {
        let mut inner = self.inner.lock();
        // Serve from the logically-deleted prefix when it is still correct to
        // do so (its head is no larger than the list head); otherwise pop the
        // list directly. Refill the prefix in batches to amortise list pops,
        // mimicking the batched physical deletion of Lindén–Jonsson.
        let list_top = inner.list.peek_key();
        let pending_top = inner.pending.front().map(|(k, _)| *k);
        let use_pending = match (pending_top, list_top) {
            (Some(p), Some(l)) => p <= l,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let result = if use_pending {
            inner.pending.pop_front()
        } else if list_top.is_some() {
            if inner.pending.is_empty() {
                // Batch-refill the pending prefix, then serve from it.
                for _ in 0..CLEANUP_BATCH {
                    match inner.list.pop() {
                        Some(entry) => inner.pending.push_back(entry),
                        None => break,
                    }
                }
                inner.pending.pop_front()
            } else {
                // The list head is smaller than the pending prefix (a fresh
                // insert undercut it): serve the list head directly so keys
                // still come out in exact order.
                inner.list.pop()
            }
        } else {
            None
        };
        if result.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        result
    }
}

impl<V: Send> SharedPq<V> for SkipListQueue<V> {
    type Handle<'q>
        = FlatHandle<'q, Self, V>
    where
        Self: 'q;

    fn register(&self) -> Self::Handle<'_> {
        FlatHandle::new(self)
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn name(&self) -> String {
        "skiplist-queue".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choice_pq::PqHandle;
    use std::collections::HashSet;

    #[test]
    fn exact_order_sequentially() {
        let q = SkipListQueue::new();
        let mut h = q.register();
        for k in [40u64, 10, 30, 20, 50] {
            h.insert(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        assert_eq!(out, vec![10, 20, 30, 40, 50]);
        assert_eq!(h.delete_min(), None);
        assert_eq!(q.name(), "skiplist-queue");
    }

    #[test]
    fn interleaved_inserts_below_the_pending_prefix_are_served_in_order() {
        let q = SkipListQueue::new();
        let mut h = q.register();
        // Force a batch refill by inserting more than one batch worth.
        for k in 100..200u64 {
            h.insert(k, k);
        }
        // Pop a few to populate the pending prefix.
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(100));
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(101));
        // Now insert keys *smaller* than the pending prefix head; they must be
        // returned before the prefix continues.
        h.insert(5, 5);
        h.insert(7, 7);
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(5));
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(7));
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(102));
    }

    #[test]
    fn exactness_over_a_large_shuffled_workload() {
        let q = SkipListQueue::new();
        let mut h = q.register();
        let mut k = 1u64;
        for _ in 0..5_000 {
            k = (k * 48271) % 5_001;
            h.insert(k, ());
        }
        let mut prev = 0;
        let mut count = 0;
        while let Some((key, ())) = h.delete_min() {
            assert!(key >= prev, "keys must come out sorted");
            prev = key;
            count += 1;
        }
        assert_eq!(count, 5_000);
    }

    #[test]
    fn concurrent_conservation() {
        let threads = 4;
        let per_thread = 2_000u64;
        let q = SkipListQueue::new();
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..threads {
                let q = &q;
                workers.push(scope.spawn(move || {
                    let mut handle = q.register();
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        if i % 2 == 1 {
                            if let Some((k, _)) = handle.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            workers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: HashSet<u64> = removed.into_iter().collect();
        let mut h = q.register();
        while let Some((k, _)) = h.delete_min() {
            assert!(all.insert(k), "duplicate key {k}");
        }
        assert_eq!(all.len() as u64, threads as u64 * per_thread);
    }

    #[test]
    fn len_tracks_operations() {
        let q = SkipListQueue::new();
        let mut h = q.register();
        for k in 0..100u64 {
            h.insert(k, ());
        }
        assert_eq!(q.approx_len(), 100);
        for _ in 0..60 {
            h.delete_min();
        }
        assert_eq!(q.approx_len(), 40);
        assert!(!q.is_empty());
    }
}
