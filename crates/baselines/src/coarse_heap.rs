//! A single binary heap behind one global lock.
//!
//! The simplest *exact* concurrent priority queue. Every operation serialises
//! on the one lock, so throughput is flat (or falls) as threads are added —
//! the sequential bottleneck that the impossibility results cited in the
//! paper's introduction make unavoidable for exact semantics, and the reason
//! relaxed designs like the MultiQueue exist.
//!
//! The structure is *flat* (sessions carry no private state), so its
//! [`SharedPq`] implementation hands out [`FlatHandle`] sessions via
//! [`FlatOps`].

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use choice_pq::{FlatHandle, FlatOps, Key, SharedPq};
use seq_pq::{BinaryHeap, SequentialPriorityQueue};

/// An exact concurrent priority queue: one lock, one heap.
#[derive(Debug)]
pub struct CoarseHeap<V> {
    heap: Mutex<BinaryHeap<V>>,
    len: AtomicUsize,
}

impl<V> CoarseHeap<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Creates an empty queue with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::with_capacity(capacity)),
            len: AtomicUsize::new(0),
        }
    }
}

impl<V> Default for CoarseHeap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> FlatOps<V> for CoarseHeap<V> {
    fn flat_insert(&self, key: Key, value: V) {
        let mut heap = self.heap.lock();
        heap.push(key, value);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    fn flat_delete_min(&self) -> Option<(Key, V)> {
        let mut heap = self.heap.lock();
        let popped = heap.pop();
        if popped.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        popped
    }
}

impl<V: Send> SharedPq<V> for CoarseHeap<V> {
    type Handle<'q>
        = FlatHandle<'q, Self, V>
    where
        Self: 'q;

    fn register(&self) -> Self::Handle<'_> {
        FlatHandle::new(self)
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn name(&self) -> String {
        "coarse-locked-heap".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choice_pq::PqHandle;
    use std::collections::HashSet;

    #[test]
    fn exact_semantics_sequentially() {
        let q = CoarseHeap::new();
        let mut h = q.register();
        for k in [9u64, 2, 7, 4, 1] {
            h.insert(k, k * 10);
        }
        assert_eq!(q.approx_len(), 5);
        let mut out = Vec::new();
        while let Some((k, v)) = h.delete_min() {
            assert_eq!(v, k * 10);
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 4, 7, 9]);
        assert!(q.is_empty());
        assert_eq!(h.delete_min(), None);
        assert_eq!(q.name(), "coarse-locked-heap");
        assert_eq!(h.stats().inserts, 5);
        assert_eq!(h.stats().removals, 5);
    }

    #[test]
    fn concurrent_conservation() {
        let threads = 4;
        let per_thread = 2_000u64;
        let q = CoarseHeap::with_capacity(1024);
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..threads {
                let q = &q;
                workers.push(scope.spawn(move || {
                    let mut handle = q.register();
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        if i % 3 == 2 {
                            if let Some((k, _)) = handle.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            workers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: HashSet<u64> = removed.into_iter().collect();
        let mut h = q.register();
        while let Some((k, _)) = h.delete_min() {
            assert!(all.insert(k), "duplicate key {k}");
        }
        assert_eq!(all.len() as u64, threads as u64 * per_thread);
    }

    #[test]
    fn exactness_under_interleaving() {
        // Because the heap is exact, a delete_min never returns a key larger
        // than one that is still present from an earlier insert batch.
        let q = CoarseHeap::new();
        let mut h = q.register();
        h.insert(100, ());
        h.insert(1, ());
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(1));
        h.insert(50, ());
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(50));
        assert_eq!(h.delete_min().map(|(k, _)| k), Some(100));
    }

    #[test]
    #[should_panic(expected = "reserved as the empty-lane sentinel")]
    fn reserved_key_rejected() {
        let q = CoarseHeap::new();
        q.register().insert(u64::MAX, ());
    }
}
