//! A single binary heap behind one global lock.
//!
//! The simplest *exact* concurrent priority queue. Every operation serialises
//! on the one lock, so throughput is flat (or falls) as threads are added —
//! the sequential bottleneck that the impossibility results cited in the
//! paper's introduction make unavoidable for exact semantics, and the reason
//! relaxed designs like the MultiQueue exist.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use choice_pq::{ConcurrentPriorityQueue, Key};
use seq_pq::{BinaryHeap, SequentialPriorityQueue};

/// An exact concurrent priority queue: one lock, one heap.
#[derive(Debug)]
pub struct CoarseHeap<V> {
    heap: Mutex<BinaryHeap<V>>,
    len: AtomicUsize,
}

impl<V> CoarseHeap<V> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Creates an empty queue with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::with_capacity(capacity)),
            len: AtomicUsize::new(0),
        }
    }
}

impl<V> Default for CoarseHeap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for CoarseHeap<V> {
    fn insert(&self, key: Key, value: V) {
        let mut heap = self.heap.lock();
        heap.push(key, value);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    fn delete_min(&self) -> Option<(Key, V)> {
        let mut heap = self.heap.lock();
        let popped = heap.pop();
        if popped.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        popped
    }

    fn approx_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn name(&self) -> String {
        "coarse-locked-heap".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn exact_semantics_sequentially() {
        let q = CoarseHeap::new();
        for k in [9u64, 2, 7, 4, 1] {
            q.insert(k, k * 10);
        }
        assert_eq!(q.approx_len(), 5);
        let mut out = Vec::new();
        while let Some((k, v)) = q.delete_min() {
            assert_eq!(v, k * 10);
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 4, 7, 9]);
        assert!(q.is_empty());
        assert_eq!(q.delete_min(), None);
        assert_eq!(q.name(), "coarse-locked-heap");
    }

    #[test]
    fn concurrent_conservation() {
        let threads = 4;
        let per_thread = 2_000u64;
        let q = Arc::new(CoarseHeap::with_capacity(1024));
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let q = Arc::clone(&q);
                handles.push(scope.spawn(move || {
                    let base = t as u64 * per_thread;
                    let mut got = Vec::new();
                    for i in 0..per_thread {
                        q.insert(base + i, base + i);
                        if i % 3 == 2 {
                            if let Some((k, _)) = q.delete_min() {
                                got.push(k);
                            }
                        }
                    }
                    got
                }));
            }
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        let mut all: HashSet<u64> = removed.into_iter().collect();
        while let Some((k, _)) = q.delete_min() {
            assert!(all.insert(k), "duplicate key {k}");
        }
        assert_eq!(all.len() as u64, threads as u64 * per_thread);
    }

    #[test]
    fn exactness_under_interleaving() {
        // Because the heap is exact, a delete_min never returns a key larger
        // than one that is still present from an earlier insert batch.
        let q = CoarseHeap::new();
        q.insert(100, ());
        q.insert(1, ());
        assert_eq!(q.delete_min().map(|(k, _)| k), Some(1));
        q.insert(50, ());
        assert_eq!(q.delete_min().map(|(k, _)| k), Some(50));
        assert_eq!(q.delete_min().map(|(k, _)| k), Some(100));
    }
}
