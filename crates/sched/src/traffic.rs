//! The open-loop traffic engine: deterministic arrival processes, priority
//! classes with per-class deadlines, and end-to-end scenario runs.
//!
//! *Open-loop* means injection is paced by an **arrival process**, not by the
//! system's completion rate: the injector thread follows a pre-generated
//! schedule and never waits for the scheduler, exactly how load tests model
//! heavy user traffic. The schedule itself is a pure function of the
//! [`TrafficSpec`] (and its seed) — generation draws from the workspace's
//! deterministic [`Xoshiro256`] with [`next_exponential`] inter-arrival
//! gaps — so two runs of a scenario inject the identical task sequence at
//! the same nominal times, and only the *service* side (the queue under
//! test) differs.
//!
//! Tasks are scheduled **earliest-deadline-first**: a task arriving at time
//! `a` in class `c` gets priority key `a + deadline(c)` (nanoseconds since
//! the scenario epoch), so the queue's relaxation translates directly into
//! measured per-class **lateness** (see [`crate::lateness`]).
//!
//! [`next_exponential`]: rank_stats::rng::RandomSource::next_exponential

use std::time::{Duration, Instant};

use choice_pq::SharedPq;
use rank_stats::rng::{RandomSource, Xoshiro256};

use crate::lateness::LatenessTracker;
use crate::scheduler::{Scheduler, SchedulerConfig, SchedulerReport};

/// How task arrivals are distributed over time.
///
/// Rates are in tasks per second of scenario time. Every pattern produces
/// Poisson-style exponential inter-arrival gaps; they differ in how the
/// instantaneous rate moves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalPattern {
    /// A steady Poisson process at a constant rate.
    Steady {
        /// Mean arrival rate (tasks/second).
        rate: f64,
    },
    /// On/off bursts: Poisson arrivals at `rate` during `on` windows,
    /// silence during `off` windows, repeating.
    Bursty {
        /// Mean arrival rate during a burst (tasks/second).
        rate: f64,
        /// Length of each burst window.
        on: Duration,
        /// Length of each silent window between bursts.
        off: Duration,
    },
    /// A diurnal ramp: the instantaneous rate swings sinusoidally between
    /// `base` and `peak` with the given period (a scaled-down day), sampled
    /// by thinning a peak-rate Poisson process.
    Diurnal {
        /// Trough arrival rate (tasks/second).
        base: f64,
        /// Peak arrival rate (tasks/second).
        peak: f64,
        /// Length of one full base→peak→base cycle.
        period: Duration,
    },
}

impl ArrivalPattern {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            ArrivalPattern::Steady { rate } => format!("steady({rate:.0}/s)"),
            ArrivalPattern::Bursty { rate, on, off } => format!(
                "bursty({rate:.0}/s, {:.0}ms on/{:.0}ms off)",
                on.as_secs_f64() * 1e3,
                off.as_secs_f64() * 1e3
            ),
            ArrivalPattern::Diurnal { base, peak, period } => format!(
                "diurnal({base:.0}→{peak:.0}/s, {:.0}ms period)",
                period.as_secs_f64() * 1e3
            ),
        }
    }

    fn validate(&self) {
        let positive = |r: f64, what: &str| {
            assert!(r > 0.0 && r.is_finite(), "{what} rate must be positive");
        };
        match self {
            ArrivalPattern::Steady { rate } => positive(*rate, "steady"),
            ArrivalPattern::Bursty { rate, on, .. } => {
                positive(*rate, "burst");
                assert!(!on.is_zero(), "burst on-window must be non-empty");
            }
            ArrivalPattern::Diurnal { base, peak, period } => {
                positive(*base, "diurnal base");
                positive(*peak, "diurnal peak");
                assert!(peak >= base, "diurnal peak must be at least the base");
                assert!(!period.is_zero(), "diurnal period must be non-empty");
            }
        }
    }
}

/// One priority class of a traffic mix.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficClass {
    /// Human-readable name (table rows).
    pub name: String,
    /// Relative share of arrivals assigned to this class.
    pub weight: f64,
    /// Per-class relative deadline: a task arriving at `t` must start by
    /// `t + deadline`.
    pub deadline: Duration,
    /// Synthetic work units executed per task (see [`burn`]).
    pub work: u32,
}

impl TrafficClass {
    /// Creates a class.
    pub fn new(name: &str, weight: f64, deadline: Duration, work: u32) -> Self {
        Self {
            name: name.to_string(),
            weight,
            deadline,
            work,
        }
    }
}

/// A complete scenario: arrival pattern × class mix × volume × seed.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    /// The arrival process.
    pub pattern: ArrivalPattern,
    /// The priority classes (at least one, positive weights).
    pub classes: Vec<TrafficClass>,
    /// Total number of tasks to inject.
    pub tasks: u64,
    /// Seed for the deterministic schedule generator.
    pub seed: u64,
}

/// One scheduled arrival: an offset from the scenario epoch and a class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// When the task arrives, relative to the scenario epoch.
    pub at: Duration,
    /// Index into [`TrafficSpec::classes`].
    pub class: usize,
}

impl TrafficSpec {
    fn validate(&self) {
        self.pattern.validate();
        assert!(!self.classes.is_empty(), "need at least one traffic class");
        assert!(
            self.classes
                .iter()
                .all(|c| c.weight > 0.0 && c.weight.is_finite()),
            "class weights must be positive"
        );
    }

    /// Generates the arrival schedule: a pure, deterministic function of the
    /// spec. Arrival times are non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (no classes, non-positive weights or
    /// rates, empty burst/period windows).
    pub fn schedule(&self) -> Vec<Arrival> {
        self.validate();
        let mut rng = Xoshiro256::seeded(self.seed);
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut arrivals = Vec::with_capacity(self.tasks as usize);
        // Busy-time clock for the bursty mapping; wall-clock for the rest.
        let mut t = 0.0f64;
        while (arrivals.len() as u64) < self.tasks {
            let at = match self.pattern {
                ArrivalPattern::Steady { rate } => {
                    t += rng.next_exponential(1.0 / rate);
                    t
                }
                ArrivalPattern::Bursty { rate, on, off } => {
                    // Arrivals happen at `rate` during on-windows only:
                    // advance a busy-time clock, then interleave the silent
                    // windows into the wall-clock mapping.
                    t += rng.next_exponential(1.0 / rate);
                    let on_s = on.as_secs_f64();
                    let cycle = on_s + off.as_secs_f64();
                    (t / on_s).floor() * cycle + t % on_s
                }
                ArrivalPattern::Diurnal { base, peak, period } => {
                    // Lewis–Shedler thinning at the peak rate.
                    loop {
                        t += rng.next_exponential(1.0 / peak);
                        let phase = t / period.as_secs_f64() * std::f64::consts::TAU;
                        let rate = base + (peak - base) * 0.5 * (1.0 - phase.cos());
                        if rng.next_f64() < rate / peak {
                            break;
                        }
                    }
                    t
                }
            };
            // Weighted class pick.
            let mut draw = rng.next_f64() * total_weight;
            let mut class = self.classes.len() - 1;
            for (i, c) in self.classes.iter().enumerate() {
                if draw < c.weight {
                    class = i;
                    break;
                }
                draw -= c.weight;
            }
            arrivals.push(Arrival {
                at: Duration::from_secs_f64(at),
                class,
            });
        }
        arrivals
    }
}

/// Outcome of one [`run_scenario`] call.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// `queue × pattern` label for tables.
    pub label: String,
    /// Tasks injected by the traffic engine.
    pub injected: u64,
    /// Merged per-class lateness distributions.
    pub lateness: LatenessTracker,
    /// The scheduler-level report (throughput, inversions, per-worker
    /// stats).
    pub sched: SchedulerReport,
}

/// Burns `units` of synthetic CPU work (a few ns per unit), preventing the
/// optimiser from deleting it.
pub fn burn(units: u32) -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..units {
        acc = acc
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(i));
    }
    std::hint::black_box(acc)
}

/// Runs one open-loop scenario against `queue`: an injector thread follows
/// the spec's deterministic schedule (sleeping until each nominal arrival
/// time, never waiting for the scheduler) while the worker pool executes;
/// each executed task burns its class's work units and records its lateness
/// against its absolute deadline.
///
/// Works with any backend — concrete or `dyn DynSharedPq<TrafficTask>` — so
/// every queue the paper compares runs the identical scenario.
pub fn run_scenario<Q>(queue: &Q, config: SchedulerConfig, spec: &TrafficSpec) -> ScenarioReport
where
    Q: SharedPq<TrafficTask> + ?Sized,
{
    let schedule = spec.schedule();
    let classes = spec.classes.len();
    let sched = Scheduler::new(queue, config);
    let epoch = Instant::now();
    let (report, trackers) = std::thread::scope(|scope| {
        let mut injector = sched.injector();
        let spec_classes = &spec.classes;
        let schedule = &schedule;
        scope.spawn(move || {
            for arrival in schedule {
                let now = epoch.elapsed();
                if arrival.at > now {
                    std::thread::sleep(arrival.at - now);
                }
                let deadline_ns =
                    (arrival.at + spec_classes[arrival.class].deadline).as_nanos() as u64;
                injector.inject(
                    deadline_ns,
                    TrafficTask {
                        class: arrival.class,
                        deadline_ns,
                        work: spec_classes[arrival.class].work,
                    },
                );
            }
            // Dropping the injector here closes the source; only now can the
            // workers' termination condition become true.
        });
        sched.run(
            |_worker| LatenessTracker::new(classes),
            |tracker: &mut LatenessTracker, _ctx, _key, task: TrafficTask| {
                // Lateness is measured at execution *start*: the deadline
                // says "start by", and measuring before the burn keeps the
                // metric about scheduling, not service time.
                let now_ns = epoch.elapsed().as_nanos() as u64;
                tracker.record(task.class, now_ns.saturating_sub(task.deadline_ns));
                burn(task.work);
            },
        )
    });
    let mut lateness = LatenessTracker::new(classes);
    for tracker in &trackers {
        lateness.merge(tracker);
    }
    ScenarioReport {
        label: format!("{} × {}", queue.name(), spec.pattern.label()),
        injected: spec.tasks,
        lateness,
        sched: report,
    }
}

/// A unit of traffic: the value type scheduled by [`run_scenario`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficTask {
    /// Index into the spec's class list.
    pub class: usize,
    /// Absolute deadline in nanoseconds since the scenario epoch (also the
    /// priority key).
    pub deadline_ns: u64,
    /// Synthetic work units to burn at execution.
    pub work: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use choice_pq::{MultiQueue, MultiQueueConfig};

    fn spec(pattern: ArrivalPattern, tasks: u64) -> TrafficSpec {
        TrafficSpec {
            pattern,
            classes: vec![
                TrafficClass::new("interactive", 3.0, Duration::from_micros(500), 16),
                TrafficClass::new("batch", 1.0, Duration::from_millis(20), 64),
            ],
            tasks,
            seed: 42,
        }
    }

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let s = spec(ArrivalPattern::Steady { rate: 100_000.0 }, 2_000);
        let a = s.schedule();
        let b = s.schedule();
        assert_eq!(a, b, "same spec must generate the same schedule");
        assert_eq!(a.len(), 2_000);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        let mut other = s.clone();
        other.seed = 43;
        assert_ne!(a, other.schedule(), "seed must matter");
    }

    #[test]
    fn steady_rate_is_respected() {
        let s = TrafficSpec {
            pattern: ArrivalPattern::Steady { rate: 50_000.0 },
            classes: vec![TrafficClass::new("only", 1.0, Duration::ZERO, 0)],
            tasks: 50_000,
            seed: 7,
        };
        let schedule = s.schedule();
        let span = schedule.last().unwrap().at.as_secs_f64();
        assert!(
            (span - 1.0).abs() < 0.05,
            "50k arrivals at 50k/s should span ~1s, got {span:.3}s"
        );
    }

    #[test]
    fn class_weights_are_respected() {
        let s = spec(ArrivalPattern::Steady { rate: 10_000.0 }, 20_000);
        let schedule = s.schedule();
        let interactive = schedule.iter().filter(|a| a.class == 0).count() as f64;
        let share = interactive / schedule.len() as f64;
        assert!(
            (share - 0.75).abs() < 0.02,
            "weight-3-of-4 class should get ~75% of arrivals, got {share:.3}"
        );
    }

    #[test]
    fn bursty_arrivals_avoid_the_off_windows() {
        let on = Duration::from_millis(10);
        let off = Duration::from_millis(30);
        let s = TrafficSpec {
            pattern: ArrivalPattern::Bursty {
                rate: 100_000.0,
                on,
                off,
            },
            classes: vec![TrafficClass::new("only", 1.0, Duration::ZERO, 0)],
            tasks: 5_000,
            seed: 9,
        };
        for a in s.schedule() {
            let cycle = (on + off).as_secs_f64();
            let phase = a.at.as_secs_f64() % cycle;
            assert!(
                phase <= on.as_secs_f64() + 1e-9,
                "arrival at phase {phase:.4}s fell into a silent window"
            );
        }
    }

    #[test]
    fn diurnal_peak_half_gets_more_arrivals() {
        let period = Duration::from_millis(100);
        let s = TrafficSpec {
            pattern: ArrivalPattern::Diurnal {
                base: 1_000.0,
                peak: 50_000.0,
                period,
            },
            classes: vec![TrafficClass::new("only", 1.0, Duration::ZERO, 0)],
            tasks: 10_000,
            seed: 11,
        };
        // The rate curve peaks at phase 0.5: compare the middle half of each
        // cycle against the outer half.
        let (mut mid, mut outer) = (0u64, 0u64);
        for a in s.schedule() {
            let phase = (a.at.as_secs_f64() / period.as_secs_f64()).fract();
            if (0.25..0.75).contains(&phase) {
                mid += 1;
            } else {
                outer += 1;
            }
        }
        assert!(
            mid > 2 * outer,
            "peak half should dominate: mid={mid} outer={outer}"
        );
    }

    #[test]
    fn scenario_runs_end_to_end_and_accounts_every_task() {
        let queue = MultiQueue::<TrafficTask>::new(MultiQueueConfig::for_threads(2).with_seed(3));
        let s = spec(ArrivalPattern::Steady { rate: 500_000.0 }, 3_000);
        let report = run_scenario(&queue, SchedulerConfig::new(2).with_delete_batch(4), &s);
        assert_eq!(report.sched.executed, 3_000);
        assert_eq!(report.lateness.executed(), 3_000);
        assert_eq!(report.injected, 3_000);
        assert!(queue.is_empty());
        assert!(report.sched.tasks_per_second > 0.0);
        assert!(report.label.contains("multiqueue"));
        // Both classes saw traffic.
        assert!(report.lateness.classes().iter().all(|c| c.executed > 0));
    }

    #[test]
    #[should_panic(expected = "peak must be at least the base")]
    fn inverted_diurnal_rates_rejected() {
        let s = TrafficSpec {
            pattern: ArrivalPattern::Diurnal {
                base: 10.0,
                peak: 5.0,
                period: Duration::from_millis(1),
            },
            classes: vec![TrafficClass::new("x", 1.0, Duration::ZERO, 0)],
            tasks: 1,
            seed: 0,
        };
        let _ = s.schedule();
    }

    #[test]
    fn burn_depends_on_units() {
        assert_ne!(burn(10), burn(11));
        assert_eq!(burn(10), burn(10));
    }
}
