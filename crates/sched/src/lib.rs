//! `choice-sched`: a relaxed-priority task scheduler on the MultiQueue.
//!
//! The paper motivates MultiQueues with exactly one application class:
//! priority schedulers (Galois-style task runtimes, branch-and-bound,
//! Dijkstra) that tolerate relaxed ordering. This crate *is* that
//! application class, built as a reusable subsystem on the
//! [`SharedPq`](choice_pq::SharedPq) session API:
//!
//! * [`Scheduler`] — a worker pool over any `SharedPq` backend (concrete or
//!   type-erased). Tasks carry deadline-style priorities (smaller key = more
//!   urgent) and may **spawn follow-up tasks** from inside workers via
//!   [`TaskCtx::spawn`]. Per-worker behaviour — sticky lanes, insert
//!   batching, `delete_min_batch` drain size, exponential idle backoff — is
//!   configured through [`SchedulerConfig`], so the d/batch engine knobs
//!   become scheduler throughput knobs.
//! * **Termination detection** — a count-based quiescence protocol
//!   ([`scheduler`] module docs) that is correct for the spawn-from-task
//!   case and robust to the MultiQueue's relaxed `approx_len` and to
//!   empty-pop races: a failed `delete_min` never means "done", and
//!   `approx_len` is never consulted at all.
//! * [`traffic`] — an open-loop traffic engine: deterministic
//!   arrival-process generators (steady Poisson, bursty on/off, diurnal
//!   ramp) over multiple priority classes with per-class deadlines,
//!   injecting tasks *concurrently with execution* through an
//!   [`Injector`], and measuring per-class **lateness** distributions with
//!   the [`lateness`] trackers.
//! * [`lateness`] — per-class lateness histograms
//!   ([`rank_stats::histogram::LogHistogram`] underneath), turning the
//!   paper's *rank* quality metric into the end-to-end application metric
//!   (how late past its deadline did each task actually run).
//!
//! # Example
//!
//! ```
//! use choice_pq::{MultiQueue, MultiQueueConfig, SharedPq};
//! use choice_sched::{Scheduler, SchedulerConfig};
//!
//! let queue = MultiQueue::<u64>::new(MultiQueueConfig::for_threads(2).with_seed(7));
//! let sched = Scheduler::new(&queue, SchedulerConfig::new(2));
//! {
//!     let mut seeder = sched.injector();
//!     for deadline in 0..100u64 {
//!         seeder.inject(deadline, deadline);
//!     }
//! }
//! let (report, _) = sched.run_simple(|ctx, deadline, _task| {
//!     // Initial tasks with an even deadline spawn one follow-up task.
//!     if deadline < 100 && deadline % 2 == 0 {
//!         ctx.spawn(deadline + 1_000, deadline);
//!     }
//! });
//! assert_eq!(report.executed, 150); // 100 injected + 50 spawned
//! assert!(queue.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lateness;
pub mod scheduler;
pub mod traffic;

pub use lateness::{ClassLateness, LatenessTracker};
pub use scheduler::{
    BackoffPolicy, Injector, Scheduler, SchedulerConfig, SchedulerReport, TaskCtx, WorkerReport,
};
pub use traffic::{
    run_scenario, Arrival, ArrivalPattern, ScenarioReport, TrafficClass, TrafficSpec, TrafficTask,
};
