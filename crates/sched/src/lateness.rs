//! Per-class lateness accounting.
//!
//! The paper's quality metric for a relaxed queue is the *rank* of a removed
//! element. At the scheduler layer the metric users actually feel is
//! **lateness**: how far past its deadline a task started executing. This
//! module turns the workspace's histogram substrate
//! ([`rank_stats::histogram::LogHistogram`]) into a per-priority-class
//! lateness tracker; the traffic engine records into one tracker per worker
//! and merges them afterwards (same pattern as the per-handle rank logs).
//!
//! Lateness is recorded in nanoseconds; a task that starts at or before its
//! deadline records `0` and counts as *on time*. The log-bucketed quantiles
//! are upper bounds within a factor of two — the right precision for a
//! metric spanning nanoseconds to seconds.
//!
//! Under admission control a task has a third outcome besides on-time and
//! late: **refused** — shed by a quota or rate limiter before it ever
//! reached a queue. Refusals are first-class here
//! ([`LatenessTracker::record_refusal`]): they count toward a class's
//! demand but not toward its executed work, so the on-time fraction stays
//! an honest property of what actually ran while
//! [`ClassLateness::completion_fraction`] reports how much of the offered
//! load was served at all.

use std::sync::Arc;

use choice_obs::{Counter, Histogram, ObsHub};
use rank_stats::histogram::LogHistogram;

/// Lateness distribution of one priority class.
#[derive(Clone, Debug, Default)]
pub struct ClassLateness {
    /// Tasks of this class executed.
    pub executed: u64,
    /// Tasks that started at or before their deadline.
    pub on_time: u64,
    /// Tasks of this class shed by an admission layer (quota, rate limit,
    /// queue lifecycle) before execution. Refused tasks record no lateness:
    /// they never ran.
    pub refused: u64,
    /// Lateness histogram in nanoseconds (on-time tasks record `0`).
    pub lateness_ns: LogHistogram,
}

impl ClassLateness {
    /// Fraction of executed tasks that ran on time (1.0 when nothing ran).
    /// Refused tasks are excluded — this measures the quality of what ran.
    pub fn on_time_fraction(&self) -> f64 {
        if self.executed == 0 {
            1.0
        } else {
            self.on_time as f64 / self.executed as f64
        }
    }

    /// Total demand this class offered: executed plus refused tasks.
    pub fn demand(&self) -> u64 {
        self.executed + self.refused
    }

    /// Fraction of offered tasks that were actually executed rather than
    /// shed (1.0 when nothing was offered).
    pub fn completion_fraction(&self) -> f64 {
        let demand = self.demand();
        if demand == 0 {
            1.0
        } else {
            self.executed as f64 / demand as f64
        }
    }

    /// Upper bound on the `q`-quantile of lateness, in microseconds
    /// (factor-of-two precision; `0` when nothing ran).
    pub fn lateness_quantile_us(&self, q: f64) -> u64 {
        self.lateness_ns
            .quantile_upper_bound(q)
            .map(|ns| ns / 1_000)
            .unwrap_or(0)
    }

    /// Mean lateness in microseconds.
    pub fn mean_lateness_us(&self) -> f64 {
        self.lateness_ns.mean() / 1_000.0
    }
}

/// The obs-registry mirror of one class: the same samples flow into a
/// shared, sharded [`Histogram`] so external observers (`MetricsDump`,
/// bench reports) read lateness from metrics snapshots.
#[derive(Clone, Debug)]
struct ClassMirror {
    lateness_ns: Arc<Histogram>,
    refusals: Arc<Counter>,
}

/// Per-class lateness tracker: one [`ClassLateness`] per priority class.
#[derive(Clone, Debug)]
pub struct LatenessTracker {
    classes: Vec<ClassLateness>,
    /// Obs mirrors (one per class) when built with
    /// [`with_obs`](LatenessTracker::with_obs); empty otherwise.
    mirrors: Vec<ClassMirror>,
}

impl LatenessTracker {
    /// Creates a tracker for `classes` priority classes.
    pub fn new(classes: usize) -> Self {
        Self {
            classes: (0..classes).map(|_| ClassLateness::default()).collect(),
            mirrors: Vec::new(),
        }
    }

    /// Creates a tracker that additionally mirrors every sample into `hub`'s
    /// metrics registry: histogram `sched_lateness_ns{class=...}` and counter
    /// `sched_refusals_total{class=...}`. Both histograms use the same
    /// log-bucket discipline, so quantiles read from a metrics snapshot agree
    /// with the local tracker's. Several trackers (e.g. one per worker) may
    /// mirror into the same hub — the cells are shared and sharded.
    pub fn with_obs(classes: usize, hub: &ObsHub) -> Self {
        let mut tracker = Self::new(classes);
        tracker.mirrors = (0..classes)
            .map(|c| {
                let class = c.to_string();
                ClassMirror {
                    lateness_ns: hub
                        .metrics()
                        .histogram("sched_lateness_ns", &[("class", &class)]),
                    refusals: hub
                        .metrics()
                        .counter("sched_refusals_total", &[("class", &class)]),
                }
            })
            .collect();
        tracker
    }

    /// Records one task execution: `lateness_ns == 0` means on time.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn record(&mut self, class: usize, lateness_ns: u64) {
        let c = &mut self.classes[class];
        c.executed += 1;
        if lateness_ns == 0 {
            c.on_time += 1;
        }
        c.lateness_ns.record(lateness_ns);
        if let Some(mirror) = self.mirrors.get(class) {
            mirror.lateness_ns.record(lateness_ns);
        }
    }

    /// Records one task of `class` refused by admission control (the task
    /// never executed, so no lateness is recorded).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn record_refusal(&mut self, class: usize) {
        self.classes[class].refused += 1;
        if let Some(mirror) = self.mirrors.get(class) {
            mirror.refusals.inc();
        }
    }

    /// Merges another tracker (e.g. another worker's) into this one.
    ///
    /// Obs mirrors are left untouched: each tracker already mirrored its own
    /// samples at record time, so re-mirroring here would double-count.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &LatenessTracker) {
        assert_eq!(
            self.classes.len(),
            other.classes.len(),
            "cannot merge trackers with different class counts"
        );
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.executed += theirs.executed;
            mine.on_time += theirs.on_time;
            mine.refused += theirs.refused;
            mine.lateness_ns.merge(&theirs.lateness_ns);
        }
    }

    /// The per-class distributions.
    pub fn classes(&self) -> &[ClassLateness] {
        &self.classes
    }

    /// Total tasks recorded across all classes.
    pub fn executed(&self) -> u64 {
        self.classes.iter().map(|c| c.executed).sum()
    }

    /// Total refusals recorded across all classes.
    pub fn refused(&self) -> u64 {
        self.classes.iter().map(|c| c.refused).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_classifies_on_time() {
        let mut t = LatenessTracker::new(2);
        t.record(0, 0);
        t.record(0, 1_500);
        t.record(1, 0);
        assert_eq!(t.executed(), 3);
        let c0 = &t.classes()[0];
        assert_eq!(c0.executed, 2);
        assert_eq!(c0.on_time, 1);
        assert!((c0.on_time_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(t.classes()[1].on_time_fraction(), 1.0);
        // 1_500 ns lives in the (1024, 2048] bucket → 2 µs upper bound.
        assert_eq!(c0.lateness_quantile_us(1.0), 2);
        assert!((c0.mean_lateness_us() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_per_class() {
        let mut a = LatenessTracker::new(1);
        let mut b = LatenessTracker::new(1);
        a.record(0, 0);
        b.record(0, 10_000);
        b.record(0, 0);
        b.record_refusal(0);
        a.merge(&b);
        assert_eq!(a.classes()[0].executed, 3);
        assert_eq!(a.classes()[0].on_time, 2);
        assert_eq!(a.classes()[0].refused, 1);
        assert_eq!(a.classes()[0].lateness_ns.count(), 3);
    }

    #[test]
    fn refusals_count_toward_demand_not_execution() {
        let mut t = LatenessTracker::new(2);
        t.record(0, 0);
        t.record(0, 500);
        t.record_refusal(0);
        t.record_refusal(0);
        assert_eq!(t.executed(), 2);
        assert_eq!(t.refused(), 2);
        let c0 = &t.classes()[0];
        assert_eq!(c0.demand(), 4);
        assert!((c0.completion_fraction() - 0.5).abs() < 1e-12);
        // On-time fraction measures only what ran: 1 of 2 executed on time.
        assert!((c0.on_time_fraction() - 0.5).abs() < 1e-12);
        // Refusals record no lateness samples.
        assert_eq!(c0.lateness_ns.count(), 2);
        // An untouched class reports full completion.
        assert_eq!(t.classes()[1].completion_fraction(), 1.0);
    }

    #[test]
    fn empty_tracker_is_benign() {
        let t = LatenessTracker::new(3);
        assert_eq!(t.executed(), 0);
        assert_eq!(t.classes()[2].lateness_quantile_us(0.99), 0);
        assert_eq!(t.classes()[0].on_time_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "different class counts")]
    fn mismatched_merge_panics() {
        let mut a = LatenessTracker::new(1);
        a.merge(&LatenessTracker::new(2));
    }

    #[test]
    fn obs_mirror_sees_every_sample_and_refusal() {
        let hub = ObsHub::new();
        let mut a = LatenessTracker::with_obs(2, &hub);
        let mut b = LatenessTracker::with_obs(2, &hub);
        a.record(0, 0);
        a.record(0, 1_500);
        b.record(0, 3_000);
        b.record(1, 0);
        b.record_refusal(1);
        // Merging must not re-mirror: the hub already holds every sample.
        a.merge(&b);
        let snap = hub.metrics().snapshot();
        let c0 = snap
            .histogram("sched_lateness_ns", &[("class", "0")])
            .expect("class 0 mirrored");
        assert_eq!(c0.count(), 3, "both trackers share the class-0 cells");
        // Quantiles agree with the local tracker (same bucket discipline).
        assert_eq!(
            c0.quantile_upper_bound(1.0),
            a.classes()[0].lateness_ns.quantile_upper_bound(1.0)
        );
        let c1 = snap
            .histogram("sched_lateness_ns", &[("class", "1")])
            .expect("class 1 mirrored");
        assert_eq!(c1.count(), 1);
        assert_eq!(
            snap.counter("sched_refusals_total", &[("class", "1")]),
            Some(1)
        );
    }
}
