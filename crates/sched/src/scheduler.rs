//! The worker-pool scheduler and its termination-detection protocol.
//!
//! # Termination detection
//!
//! Workers must stop exactly when every task that will ever exist has been
//! executed. With spawn-from-task and concurrent open-loop injection this is
//! a distributed-termination problem, and two tempting shortcuts are wrong
//! on a relaxed queue:
//!
//! * **"`delete_min` returned `None`, so we are done"** — a relaxed pop can
//!   fail transiently (sampled lanes empty while elements sit in others, a
//!   lane emptied between the peek and the lock), and even a truthful empty
//!   observation says nothing about tasks currently *executing*, which may
//!   spawn more.
//! * **"`approx_len() == 0`, so we are done"** — the count is maintained
//!   with relaxed atomics and excludes elements buffered privately in
//!   session handles; it is a load-balancing hint, not a linearizable
//!   emptiness test (see `DESIGN.md` §5.2).
//!
//! The scheduler instead runs the standard count-based quiescence protocol
//! (the message-counting termination detector of Mattern's credit/count
//! family — see Aspnes, *Notes on Theory of Distributed Systems*, ch. 8):
//! a shared `pending` counter tracks tasks that are *injected or spawned but
//! not yet fully executed*, and a `sources` counter tracks open injectors.
//!
//! * an [`Injector`] increments `pending` **before** inserting a task, and
//!   decrements `sources` only on drop (after flushing its insert buffer);
//! * [`TaskCtx::spawn`] increments `pending` while the parent task is still
//!   counted (the parent's own unit is released only after the handler
//!   returned and its spawns were handed to the queue), so `pending` can
//!   never dip to zero while a spawn is in flight;
//! * a worker may conclude "done" only from the conjunction: its pop failed
//!   with a **quiescent-empty observation** (the [`HandleStats::empty_polls`]
//!   counter moved, not merely a contention race), **then** `sources == 0`,
//!   **then** `pending == 0`, read in that order with sequentially
//!   consistent loads.
//!
//! Why the order makes the check stable: once `sources` reads 0, no injector
//! will ever increment `pending` again (injectors increment strictly before
//! closing). A later `pending == 0` therefore also rules out spawns — a
//! spawn requires a running task, which requires `pending > 0`. Both
//! counters can only move `0 → positive` through paths that are closed at
//! that point, so the conjunction, once observed, holds forever and every
//! worker eventually observes it. A failed pop alone never terminates
//! anything — it merely triggers the (exponential) idle backoff.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use choice_obs::{EventKind, ObsHub};
use choice_pq::{check_key, HandlePolicy, HandleStats, Key, PqHandle, QueueTopology, SharedPq};
use rank_stats::histogram::LogHistogram;
use rank_stats::timing::OpsTimer;

/// Exponential idle-backoff policy for workers that keep finding the queue
/// empty (while termination has not been detected).
///
/// The first `spin_polls` consecutive empty polls just yield the CPU;
/// subsequent ones sleep, doubling from `initial` up to `max`. Any
/// successful pop resets the progression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Consecutive empty polls that only `yield_now` before sleeping starts.
    pub spin_polls: u32,
    /// First sleep duration once spinning is exhausted.
    pub initial: Duration,
    /// Sleep-duration ceiling.
    pub max: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            spin_polls: 8,
            initial: Duration::from_micros(20),
            max: Duration::from_millis(2),
        }
    }
}

impl BackoffPolicy {
    /// The wait for the `attempt`-th consecutive empty poll (1-based);
    /// `None` means "yield, do not sleep".
    fn wait_for(&self, attempt: u32) -> Option<Duration> {
        if attempt <= self.spin_polls {
            return None;
        }
        let doublings = (attempt - self.spin_polls - 1).min(20);
        Some(self.initial.saturating_mul(1 << doublings).min(self.max))
    }
}

/// Configuration of a [`Scheduler`] worker pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchedulerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Per-worker session policy (sticky lanes, insert batching,
    /// instrumentation). Honoured by the MultiQueue, ignored by flat
    /// backends (see [`SharedPq::register_policy`]).
    pub handle_policy: HandlePolicy,
    /// How many tasks one poll drains (`delete_min_batch_into` size). `1`
    /// is plain `delete_min`; larger values amortise the lane choice and
    /// lock over the batch at a bounded priority-quality cost.
    pub delete_batch: usize,
    /// Idle backoff applied on consecutive empty polls.
    pub backoff: BackoffPolicy,
}

impl SchedulerConfig {
    /// A plain configuration: `workers` threads, default session policy,
    /// single-task polls, default backoff.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            workers,
            handle_policy: HandlePolicy::default(),
            delete_batch: 1,
            backoff: BackoffPolicy::default(),
        }
    }

    /// Sets the per-worker session policy.
    pub fn with_handle_policy(mut self, policy: HandlePolicy) -> Self {
        self.handle_policy = policy;
        self
    }

    /// Sets the per-poll drain size.
    ///
    /// # Panics
    ///
    /// Panics if `delete_batch == 0`.
    pub fn with_delete_batch(mut self, delete_batch: usize) -> Self {
        assert!(delete_batch > 0, "delete batch must be positive");
        self.delete_batch = delete_batch;
        self
    }

    /// Sets the idle-backoff policy.
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }
}

/// The shared quiescence state of the termination protocol (module docs).
#[derive(Debug, Default)]
struct Quiescence {
    /// Tasks injected or spawned but not yet fully executed.
    pending: AtomicU64,
    /// Open injection sources.
    sources: AtomicU64,
}

/// A task-injection session: the only way work enters a [`Scheduler`].
///
/// Injectors participate in termination detection — each one counts as an
/// open source until dropped, and every injected task is registered with the
/// quiescence counter *before* it becomes poppable — so injection may run
/// concurrently with execution (the open-loop traffic engine does exactly
/// that). Dropping the injector flushes its session buffer and closes the
/// source.
pub struct Injector<'s, 'q, V, Q: SharedPq<V> + ?Sized + 'q> {
    handle: Q::Handle<'q>,
    quiescence: &'s Quiescence,
    injected: u64,
}

impl<V, Q: SharedPq<V> + ?Sized> Injector<'_, '_, V, Q> {
    /// Injects one task with a deadline-style priority (smaller = more
    /// urgent).
    ///
    /// # Panics
    ///
    /// Panics if `deadline == Key::MAX` (see [`choice_pq::check_key`]).
    pub fn inject(&mut self, deadline: Key, task: V) {
        check_key(deadline);
        // Count strictly before the task can be popped: a worker that
        // executes it must never observe `pending == 0` concurrently.
        self.quiescence.pending.fetch_add(1, Ordering::SeqCst);
        self.handle.insert(deadline, task);
        self.injected += 1;
    }

    /// Number of tasks injected through this session so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl<V, Q: SharedPq<V> + ?Sized> Drop for Injector<'_, '_, V, Q> {
    fn drop(&mut self) {
        // Publish any privately buffered inserts before closing the source:
        // the handle's own drop-flush would run *after* this drop body, i.e.
        // after workers may already have terminated.
        self.handle.flush();
        self.quiescence.sources.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Execution context handed to the task handler; the only way to spawn
/// follow-up work from inside a task.
pub struct TaskCtx<'a, V> {
    worker: usize,
    deadline: Key,
    quiescence: &'a Quiescence,
    spawned: &'a mut Vec<(Key, V)>,
}

impl<V> TaskCtx<'_, V> {
    /// Index of the worker executing this task (`0..workers`).
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The deadline (priority key) this task was scheduled with.
    pub fn deadline(&self) -> Key {
        self.deadline
    }

    /// Spawns a follow-up task.
    ///
    /// The spawn is registered with the termination detector immediately
    /// (while the parent task is still counted as pending) and handed to the
    /// worker's queue session right after the handler returns.
    ///
    /// # Panics
    ///
    /// Panics if `deadline == Key::MAX`.
    pub fn spawn(&mut self, deadline: Key, task: V) {
        check_key(deadline);
        self.quiescence.pending.fetch_add(1, Ordering::SeqCst);
        self.spawned.push((deadline, task));
    }
}

/// Per-worker outcome of one [`Scheduler::run`].
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Worker index.
    pub worker: usize,
    /// Tasks executed by this worker.
    pub executed: u64,
    /// Follow-up tasks spawned from this worker's tasks.
    pub spawned: u64,
    /// Idle backoff waits (yields + sleeps) performed.
    pub backoff_waits: u64,
    /// The worker session's queue counters (`empty_polls` and
    /// `contended_retries` included).
    pub stats: HandleStats,
}

/// Outcome of one [`Scheduler::run`].
#[derive(Clone, Debug)]
pub struct SchedulerReport {
    /// Total tasks executed across all workers.
    pub executed: u64,
    /// Total follow-up tasks spawned from inside tasks.
    pub spawned: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// `executed / elapsed` in tasks per second.
    pub tasks_per_second: f64,
    /// Distribution of observed **deadline inversions**: each time a worker
    /// pops a deadline smaller than the one it popped just before, the
    /// magnitude of the step back is recorded. This is the scheduler-level
    /// face of the paper's rank metric — a single-worker run over an exact
    /// queue records nothing, while relaxed queues record magnitudes that
    /// shrink with `d` and grow with the delete batch (multi-worker runs
    /// add benign cross-worker interleaving noise for every backend).
    pub inversions: LogHistogram,
    /// Per-worker breakdowns.
    pub workers: Vec<WorkerReport>,
    /// The queue's layout as the pool observed it after quiescence: lane
    /// table, shard count, and — for an elastic backend — how many resizes
    /// the run triggered. Centralized backends report the trivial shape.
    pub topology: QueueTopology,
}

impl SchedulerReport {
    /// The pool-wide queue counters: every worker session's
    /// [`HandleStats`] folded together with [`HandleStats::merge`].
    pub fn merged_stats(&self) -> HandleStats {
        let mut totals = HandleStats::default();
        for worker in &self.workers {
            totals.merge(&worker.stats);
        }
        totals
    }

    /// Sum of `empty_polls` over all worker sessions.
    pub fn empty_polls(&self) -> u64 {
        self.merged_stats().empty_polls
    }

    /// Sum of `contended_retries` over all worker sessions.
    pub fn contended_retries(&self) -> u64 {
        self.merged_stats().contended_retries
    }
}

/// A relaxed-priority work scheduler over any [`SharedPq`] backend.
///
/// The scheduler borrows the queue; workers are scoped threads created per
/// [`run`](Scheduler::run) call, each operating through its own registered
/// session. Injection (concurrent or ahead-of-time) goes through
/// [`injector`](Scheduler::injector) sessions; `run` returns when the
/// termination detector proves quiescence (module docs).
///
/// The queue type may be concrete (`MultiQueue<V>`, `CoarseHeap<V>`, …) or
/// type-erased (`dyn DynSharedPq<V>`), so one scheduler drives every
/// backend the paper compares.
pub struct Scheduler<'q, V, Q: SharedPq<V> + ?Sized> {
    queue: &'q Q,
    config: SchedulerConfig,
    quiescence: Quiescence,
    /// Telemetry hub: worker quiescence transitions go to the flight
    /// recorder, per-run task/backoff totals to the metrics registry. `None`
    /// keeps the pool telemetry-free.
    obs: Option<Arc<ObsHub>>,
    _values: PhantomData<fn(V) -> V>,
}

impl<'q, V: Send, Q: SharedPq<V> + ?Sized> Scheduler<'q, V, Q> {
    /// Creates a scheduler over `queue`.
    pub fn new(queue: &'q Q, config: SchedulerConfig) -> Self {
        Self {
            queue,
            config,
            quiescence: Quiescence::default(),
            obs: None,
            _values: PhantomData,
        }
    }

    /// Attaches a telemetry hub: each worker records a
    /// [`Quiescence`](EventKind::Quiescence) flight-recorder event when the
    /// termination detector fires, and folds its executed-task and
    /// backoff-wait totals into the `sched_tasks_executed_total` /
    /// `sched_backoff_waits_total` counters (off the hot path — once per
    /// worker per run).
    pub fn with_obs(mut self, hub: Arc<ObsHub>) -> Self {
        self.obs = Some(hub);
        self
    }

    /// The configuration this scheduler was built with.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The queue this scheduler executes from.
    pub fn queue(&self) -> &'q Q {
        self.queue
    }

    /// Opens an injection session.
    ///
    /// May be used before `run` (seeding) or concurrently with it from
    /// another thread (open-loop traffic). `run` does not return while any
    /// injector is alive, so drop injectors when their traffic ends.
    ///
    /// **Ordering contract:** open an injector *before* the `run` call it
    /// feeds (or while another source is still open, e.g. chained traffic
    /// waves). Opening one concurrently with a pool that has already
    /// drained every earlier source races against termination detection:
    /// `run` may legitimately observe quiescence and return before the new
    /// source's increment, leaving the late tasks in the queue for a
    /// subsequent `run`.
    pub fn injector(&self) -> Injector<'_, 'q, V, Q> {
        self.quiescence.sources.fetch_add(1, Ordering::SeqCst);
        Injector {
            handle: self.queue.register(),
            quiescence: &self.quiescence,
            injected: 0,
        }
    }

    /// Runs the worker pool until quiescence, threading a per-worker state
    /// value through the handler (created by `init`, returned alongside the
    /// report) — the allocation-free way to accumulate per-worker results
    /// such as lateness histograms.
    ///
    /// The handler runs once per task as `handler(&mut state, &mut ctx,
    /// deadline, task)`; it may spawn follow-ups through the context.
    ///
    /// # Panics
    ///
    /// A panic in the handler propagates out of `run` (it does not hang the
    /// pool): the panicking worker releases the termination-counter units of
    /// its abandoned tasks so the other workers still reach quiescence and
    /// the scope joins, then the panic is re-raised. The abandoned tasks are
    /// *not* executed.
    pub fn run<S, I, F>(&self, init: I, handler: F) -> (SchedulerReport, Vec<S>)
    where
        S: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, &mut TaskCtx<'_, V>, Key, V) + Sync,
    {
        let timer = OpsTimer::start();
        let per_worker: Vec<(WorkerReport, LogHistogram, S)> = std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(self.config.workers);
            for worker in 0..self.config.workers {
                let init = &init;
                let handler = &handler;
                joins.push(scope.spawn(move || self.worker_loop(worker, init, handler)));
            }
            joins
                .into_iter()
                .map(|j| j.join().expect("scheduler worker panicked"))
                .collect()
        });

        let mut report = SchedulerReport {
            executed: 0,
            spawned: 0,
            elapsed: timer.elapsed(),
            tasks_per_second: 0.0,
            inversions: LogHistogram::new(),
            workers: Vec::with_capacity(per_worker.len()),
            topology: self.queue.topology(),
        };
        let mut states = Vec::with_capacity(per_worker.len());
        for (worker, inversions, state) in per_worker {
            report.executed += worker.executed;
            report.spawned += worker.spawned;
            report.inversions.merge(&inversions);
            report.workers.push(worker);
            states.push(state);
        }
        report.tasks_per_second = timer.ops_per_second(report.executed);
        if let Some(hub) = &self.obs {
            // A finished run is a natural rate-window boundary: close one so
            // a following dump reports this run's ops as live rates instead
            // of folding them into an ever-growing lifetime average.
            hub.window_tick();
        }
        (report, states)
    }

    /// [`run`](Scheduler::run) without per-worker state.
    pub fn run_simple<F>(&self, handler: F) -> (SchedulerReport, Vec<()>)
    where
        F: Fn(&mut TaskCtx<'_, V>, Key, V) + Sync,
    {
        self.run(
            |_| (),
            |(), ctx, deadline, task| handler(ctx, deadline, task),
        )
    }

    /// One worker: poll (batched), execute, publish spawns, release pending
    /// units; on an empty poll consult the termination detector, else back
    /// off. See the module docs for the correctness argument.
    fn worker_loop<S, I, F>(
        &self,
        worker: usize,
        init: &I,
        handler: &F,
    ) -> (WorkerReport, LogHistogram, S)
    where
        I: Fn(usize) -> S,
        F: Fn(&mut S, &mut TaskCtx<'_, V>, Key, V),
    {
        let mut handle = self.queue.register_policy(self.config.handle_policy);
        let mut state = init(worker);
        let mut report = WorkerReport {
            worker,
            ..WorkerReport::default()
        };
        let mut inversions = LogHistogram::new();
        let mut batch: Vec<(Key, V)> = Vec::with_capacity(self.config.delete_batch);
        let mut spawned: Vec<(Key, V)> = Vec::new();
        let mut last_deadline = 0u64;
        let mut idle_polls = 0u32;
        loop {
            let empty_polls_before = handle.stats().empty_polls;
            let popped = handle.delete_min_batch_into(self.config.delete_batch, &mut batch);
            if popped > 0 {
                idle_polls = 0;
                // A panicking handler must not hang the pool: the popped
                // tasks (and any spawns registered but not yet inserted)
                // already hold `pending` units whose releases live below the
                // handler call. Catch the unwind, release the orphaned
                // units so the other workers can still reach quiescence,
                // and re-raise — `run` then propagates the panic instead of
                // deadlocking in the thread scope.
                let mut completed = 0usize;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for (deadline, task) in batch.drain(..) {
                        if deadline < last_deadline {
                            inversions.record(last_deadline - deadline);
                        }
                        last_deadline = deadline;
                        let mut ctx = TaskCtx {
                            worker,
                            deadline,
                            quiescence: &self.quiescence,
                            spawned: &mut spawned,
                        };
                        handler(&mut state, &mut ctx, deadline, task);
                        report.executed += 1;
                        report.spawned += spawned.len() as u64;
                        for (key, value) in spawned.drain(..) {
                            // May buffer privately under an insert-batch
                            // policy; that is safe: the spawns are already
                            // counted as pending, and this worker's own next
                            // poll flushes the buffer before it could
                            // conclude emptiness.
                            handle.insert(key, value);
                        }
                        // Only now is the parent's own unit released:
                        // `pending` stayed positive throughout, covering the
                        // spawns.
                        self.quiescence.pending.fetch_sub(1, Ordering::SeqCst);
                        completed += 1;
                    }
                }));
                if let Err(payload) = outcome {
                    // The panicking task plus every undrained batch entry
                    // (discarded by the Drain drop) still hold one unit
                    // each; its not-yet-inserted spawns hold one each too.
                    let orphaned = (popped - completed) as u64 + spawned.len() as u64;
                    spawned.clear();
                    self.quiescence
                        .pending
                        .fetch_sub(orphaned, Ordering::SeqCst);
                    std::panic::resume_unwind(payload);
                }
                continue;
            }
            // Empty poll. Only a quiescent-empty observation (not a lost
            // contention race) may consult the termination condition; the
            // ordering sources-then-pending makes the conjunction stable
            // (module docs).
            let observed_empty = handle.stats().empty_polls > empty_polls_before;
            if observed_empty
                && self.quiescence.sources.load(Ordering::SeqCst) == 0
                && self.quiescence.pending.load(Ordering::SeqCst) == 0
            {
                if let Some(hub) = &self.obs {
                    hub.recorder().record(
                        EventKind::Quiescence,
                        "sched",
                        [worker as u64, report.executed, 0],
                    );
                    hub.metrics()
                        .counter("sched_tasks_executed_total", &[])
                        .add(report.executed);
                    hub.metrics()
                        .counter("sched_backoff_waits_total", &[])
                        .add(report.backoff_waits);
                }
                break;
            }
            idle_polls += 1;
            report.backoff_waits += 1;
            match self.config.backoff.wait_for(idle_polls) {
                None => std::thread::yield_now(),
                Some(sleep) => std::thread::sleep(sleep),
            }
        }
        report.stats = handle.stats();
        (report, inversions, state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choice_pq::{MultiQueue, MultiQueueConfig};

    fn queue(workers: usize, seed: u64) -> MultiQueue<u64> {
        MultiQueue::new(MultiQueueConfig::for_threads(workers).with_seed(seed))
    }

    #[test]
    fn runs_to_quiescence_without_any_tasks() {
        let q = queue(2, 1);
        let sched = Scheduler::new(&q, SchedulerConfig::new(2));
        let (report, _) = sched.run_simple(|_, _, _| {});
        assert_eq!(report.executed, 0);
        assert!(report.empty_polls() >= 2, "each worker observed emptiness");
    }

    #[test]
    fn executes_seeded_and_spawned_tasks_exactly_once() {
        let q = queue(2, 2);
        let sched = Scheduler::new(&q, SchedulerConfig::new(2).with_delete_batch(4));
        {
            let mut seeder = sched.injector();
            for i in 0..500u64 {
                seeder.inject(i, i);
            }
            assert_eq!(seeder.injected(), 500);
        }
        // Every task with value < 500 spawns two children.
        let (report, _) = sched.run_simple(|ctx, d, v| {
            if v < 500 {
                ctx.spawn(d + 10_000, 1_000 + v);
                ctx.spawn(d + 20_000, 2_000 + v);
            }
        });
        assert_eq!(report.spawned, 1_000);
        assert_eq!(report.executed, 1_500);
        assert!(q.is_empty());
        let per_worker: u64 = report.workers.iter().map(|w| w.executed).sum();
        assert_eq!(per_worker, 1_500);
    }

    #[test]
    fn injection_concurrent_with_execution_terminates() {
        let q = queue(2, 3);
        let sched = Scheduler::new(&q, SchedulerConfig::new(2));
        let (report, _) = std::thread::scope(|scope| {
            let mut injector = sched.injector();
            scope.spawn(move || {
                for i in 0..2_000u64 {
                    injector.inject(i, i);
                    if i % 256 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            sched.run_simple(|_, _, _| {})
        });
        assert_eq!(report.executed, 2_000);
        assert!(q.is_empty());
    }

    #[test]
    fn buffered_injector_tasks_are_flushed_on_drop() {
        let q = queue(1, 4);
        let sched = Scheduler::new(
            &q,
            SchedulerConfig::new(1)
                .with_handle_policy(HandlePolicy::default().with_insert_batch(64)),
        );
        {
            // The injector session itself uses the default policy; buffering
            // happens in *worker* sessions. Spawn from a task so a worker's
            // buffered insert is exercised, then make sure nothing strands.
            let mut seeder = sched.injector();
            for i in 0..10u64 {
                seeder.inject(i, i);
            }
        }
        let (report, _) = sched.run_simple(|ctx, d, v| {
            if v < 10 {
                ctx.spawn(d + 100, 100 + v);
            }
        });
        assert_eq!(report.executed, 20);
        assert!(q.is_empty());
    }

    #[test]
    fn inversions_are_recorded_for_relaxed_pops() {
        // Single-choice (maximally relaxed) with several lanes and one
        // worker: deadline inversions are essentially guaranteed.
        let q =
            MultiQueue::<u64>::new(MultiQueueConfig::with_queues(8).with_beta(0.0).with_seed(5));
        let sched = Scheduler::new(&q, SchedulerConfig::new(1));
        {
            let mut seeder = sched.injector();
            for i in 0..2_000u64 {
                seeder.inject(i, i);
            }
        }
        let (report, _) = sched.run_simple(|_, _, _| {});
        assert_eq!(report.executed, 2_000);
        assert!(
            report.inversions.count() > 0,
            "single-choice pops must show deadline inversions"
        );
    }

    #[test]
    fn per_worker_state_is_threaded_through() {
        let q = queue(2, 6);
        let sched = Scheduler::new(&q, SchedulerConfig::new(2));
        {
            let mut seeder = sched.injector();
            for i in 0..100u64 {
                seeder.inject(i, i);
            }
        }
        let (report, sums) = sched.run(|_worker| 0u64, |sum, _ctx, _deadline, task| *sum += task);
        assert_eq!(report.executed, 100);
        assert_eq!(sums.iter().sum::<u64>(), (0..100u64).sum());
    }

    #[test]
    fn report_carries_the_queue_topology() {
        use choice_pq::ElasticPolicy;
        let q = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(8)
                .with_seed(12)
                .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
        );
        let sched = Scheduler::new(&q, SchedulerConfig::new(2));
        {
            let mut seeder = sched.injector();
            for i in 0..200u64 {
                seeder.inject(i, i);
            }
        }
        // Force a grow mid-run so the resize shows up in the report.
        q.resize_active(8);
        let (report, _) = sched.run_simple(|_, _, _| {});
        assert_eq!(report.executed, 200);
        assert_eq!(report.topology.max_lanes, 8);
        assert!(report.topology.grows >= 1);
        assert!(report.topology.active_lanes >= 2);
    }

    #[test]
    #[should_panic(expected = "scheduler worker panicked")]
    fn handler_panic_propagates_instead_of_hanging() {
        let q = queue(2, 8);
        let sched = Scheduler::new(&q, SchedulerConfig::new(2).with_delete_batch(4));
        {
            let mut seeder = sched.injector();
            for i in 0..100u64 {
                seeder.inject(i, i);
            }
        }
        // One task blows up mid-batch (possibly with spawns already
        // registered); run must re-raise the panic, not deadlock waiting
        // for the orphaned pending units.
        let _ = sched.run_simple(|ctx, d, v| {
            if v == 40 {
                ctx.spawn(d + 1_000, 10_000);
                panic!("task handler exploded");
            }
        });
    }

    #[test]
    fn backoff_policy_escalates_and_caps() {
        let p = BackoffPolicy {
            spin_polls: 2,
            initial: Duration::from_micros(10),
            max: Duration::from_micros(35),
        };
        assert_eq!(p.wait_for(1), None);
        assert_eq!(p.wait_for(2), None);
        assert_eq!(p.wait_for(3), Some(Duration::from_micros(10)));
        assert_eq!(p.wait_for(4), Some(Duration::from_micros(20)));
        assert_eq!(p.wait_for(5), Some(Duration::from_micros(35)));
        assert_eq!(p.wait_for(60), Some(Duration::from_micros(35)));
    }

    #[test]
    fn quiescence_transitions_reach_the_flight_recorder() {
        let hub = ObsHub::new();
        let q = queue(2, 9);
        let sched = Scheduler::new(&q, SchedulerConfig::new(2)).with_obs(Arc::clone(&hub));
        {
            let mut seeder = sched.injector();
            for i in 0..50u64 {
                seeder.inject(i, i);
            }
        }
        let (report, _) = sched.run_simple(|_, _, _| {});
        assert_eq!(report.executed, 50);
        let quiesced: Vec<_> = hub
            .recorder()
            .events()
            .into_iter()
            .filter(|e| e.kind == EventKind::Quiescence)
            .collect();
        assert_eq!(quiesced.len(), 2, "one transition per worker");
        let mut workers: Vec<u64> = quiesced.iter().map(|e| e.fields[0]).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1]);
        assert_eq!(
            quiesced.iter().map(|e| e.fields[1]).sum::<u64>(),
            50,
            "executed counts in the events sum to the report"
        );
        let snap = hub.metrics().snapshot();
        assert_eq!(snap.counter("sched_tasks_executed_total", &[]), Some(50));
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        let _ = SchedulerConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "delete batch must be positive")]
    fn zero_delete_batch_rejected() {
        let _ = SchedulerConfig::new(1).with_delete_batch(0);
    }
}
