//! The MultiQueue as a network service: spawn a choice-wire server on an
//! ephemeral loopback port, drive it from several pipelined clients, and
//! read back the aggregated per-session statistics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pq_service
//! ```
//!
//! Environment knobs (used by the CI smoke run): `SERVICE_ITEMS` (items per
//! client, default 20000), `SERVICE_CLIENTS` (default 4),
//! `SERVICE_WINDOW` (pipeline credit window, default 32).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use power_of_choice::prelude::*;
use power_of_choice::service::{Request, Response};
use power_of_choice::util::env_u64;

fn main() {
    let per_client_items = env_u64("SERVICE_ITEMS", 20_000);
    let clients = env_u64("SERVICE_CLIENTS", 4) as usize;
    let window = env_u64("SERVICE_WINDOW", 32) as usize;

    // The queue outlives the server: the Arc is shared, not moved away.
    let queue: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::new(
        MultiQueueConfig::for_threads(clients)
            .with_beta(0.75)
            .with_seed(7),
    ));
    let server = PqServer::spawn(Arc::clone(&queue), "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral loopback port");
    println!(
        "serving {} on {} ({clients} clients × {per_client_items} items, window {window})",
        queue.name_dyn(),
        server.local_addr()
    );

    let total = clients as u64 * per_client_items;
    let t0 = Instant::now();
    // Relaxed emptiness is best-effort: one client's empty batch does not
    // prove the queue is drained while others still insert, so the fleet
    // terminates on a shared count of entries actually popped, never on an
    // empty observation.
    let collected = AtomicU64::new(0);
    let popped: u64 = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients as u64)
            .map(|c| {
                let addr = server.local_addr();
                let collected = &collected;
                scope.spawn(move || {
                    // One pipelined session per worker — the remote mirror
                    // of "one registered handle per thread".
                    let mut client = PqClient::connect_with_window(addr, window).expect("connect");
                    for i in 0..per_client_items {
                        client
                            .submit(&Request::Insert {
                                key: c * per_client_items + i,
                                value: i,
                            })
                            .expect("pipelined insert");
                    }
                    client.drain_all(|_| {}).expect("insert acks");
                    let mut popped = 0u64;
                    while collected.load(Ordering::SeqCst) < total {
                        let entries = client.delete_min_batch(64).expect("batched removal");
                        if entries.is_empty() {
                            std::thread::yield_now();
                            continue;
                        }
                        collected.fetch_add(entries.len() as u64, Ordering::SeqCst);
                        popped += entries.len() as u64;
                    }
                    popped
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).sum()
    });
    let elapsed = t0.elapsed();
    println!(
        "round-tripped {total} inserts; popped {popped} back ({:.0} kops/s over loopback TCP)",
        (total + popped) as f64 / elapsed.as_secs_f64() / 1e3
    );

    // One last client reads the aggregate: every session's HandleStats
    // merged server-side (the wire Stats op).
    let mut observer = PqClient::connect(server.local_addr()).expect("connect");
    let stats = observer.stats().expect("stats op");
    println!(
        "server stats: {} sessions, {} inserts, {} removals, {} empty polls",
        stats.sessions, stats.totals.inserts, stats.totals.removals, stats.totals.empty_polls
    );
    match observer.submit(&Request::Insert {
        key: u64::MAX,
        value: 0,
    }) {
        Ok(None) => {
            let (response, _) = observer.drain_one().expect("refusal frame");
            assert!(matches!(response, Response::Error { .. }));
            println!("reserved-key insert refused over the wire (no panic, session intact)");
        }
        other => panic!("unexpected submit outcome: {other:?}"),
    }

    observer.shutdown_server().expect("shutdown handshake");
    let final_stats = server.join();
    assert_eq!(final_stats.totals.inserts, total);
    assert!(
        popped == total && queue.is_empty_dyn(),
        "every inserted element came back exactly once"
    );
    println!("server drained and shut down cleanly");
}
