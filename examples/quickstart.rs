//! Quickstart: create a (1 + β) MultiQueue, use it from several threads
//! through registered session handles, and measure how relaxed it actually
//! was.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Environment knobs (used by the CI smoke run): `QUICKSTART_ITEMS` (items
//! per thread, default 50000), `QUICKSTART_THREADS` (default 4).

use std::sync::atomic::{AtomicU64, Ordering};

use power_of_choice::prelude::*;
use power_of_choice::util::env_u64;

fn main() {
    let threads = env_u64("QUICKSTART_THREADS", 4) as usize;
    let per_thread_items = env_u64("QUICKSTART_ITEMS", 50_000);

    // The paper's recommended sizing: c = 2 queues per thread, beta = 0.75.
    let config = MultiQueueConfig::for_threads(threads).with_beta(0.75);
    println!("creating {}", config.label());
    let queue = MultiQueue::<u64>::new(config);

    // Each thread registers an *instrumented* session handle, inserts a block
    // of keys and then removes the same number. Instrumented handles log
    // removals against the queue's shared coherent clock, so we can compute
    // the mean rank afterwards (the Section 5 methodology).
    let next_key = AtomicU64::new(0);

    let logs: Vec<_> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let queue = &queue;
            let next_key = &next_key;
            handles.push(scope.spawn(move || {
                let mut session = queue.register_with(HandlePolicy::instrumented());
                for _ in 0..per_thread_items {
                    let key = next_key.fetch_add(1, Ordering::Relaxed);
                    session.insert(key, key);
                }
                for _ in 0..per_thread_items {
                    session.delete_min();
                }
                println!(
                    "session {} performed {} operations",
                    session.id(),
                    session.stats().operations()
                );
                session.take_log()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut counter = InversionCounter::new();
    for log in logs {
        counter.record_all(log);
    }
    let summary = counter.summarize();
    println!(
        "performed {} removals across {threads} threads",
        summary.removals
    );
    println!(
        "mean rank of removed elements: {:.2} (1.0 would be a perfectly exact queue)",
        summary.mean_rank
    );
    println!("maximum rank observed:        {}", summary.max_rank);
    println!(
        "theory (Theorem 1): mean rank = O(n) with n = {} internal queues",
        threads * MultiQueueConfig::DEFAULT_QUEUES_PER_THREAD
    );
    assert!(queue.is_empty());
}
