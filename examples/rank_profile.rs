//! Rank profile of the sequential process: reproduce the paper's headline
//! numbers interactively.
//!
//! Sweeps β for a fixed number of queues and prints the mean/max rank of the
//! sequential (1 + β) process, the exponential-process potential Γ/n, and the
//! divergence of the single-choice process — a condensed, fast version of the
//! T1/T2/T3/T5 experiment binaries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rank_profile
//! ```
//!
//! Environment knobs (used by the CI smoke run): `RANK_STEPS` (process steps
//! per configuration, default 100000), `RANK_QUEUES` (number of queues n,
//! default 16).

use power_of_choice::prelude::*;
use power_of_choice::process::potential::{PotentialParams, PotentialSnapshot};
use power_of_choice::util::env_u64;

fn main() {
    let n = env_u64("RANK_QUEUES", 16).max(2) as usize;
    let steps = env_u64("RANK_STEPS", 100_000).max(1);
    let floor = (n as u64) * 500;

    println!("sequential (1 + beta) process with n = {n} queues, {steps} steps");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "beta", "mean rank", "max rank", "mean rank / n"
    );
    for beta in [1.0, 0.75, 0.5, 0.25, 0.0] {
        let mut process =
            SequentialProcess::new(ProcessConfig::new(n).with_beta(beta).with_seed(1));
        let summary = process.run_alternating(steps, floor);
        println!(
            "{:>8} {:>12.2} {:>12} {:>14.2}",
            beta,
            summary.mean_rank,
            summary.max_rank,
            summary.mean_rank / n as f64
        );
    }
    println!();
    println!("(Theorem 1: for beta bounded away from 0 the mean rank stays O(n);");
    println!(" Theorem 6: for beta = 0 it grows with the run length.)");

    // Potential of the exponential process (Theorem 3).
    let params = PotentialParams::from_beta_gamma(1.0, 0.0);
    let mut exponential = ExponentialTopProcess::new(ProcessConfig::new(n).with_seed(1));
    exponential.run(steps);
    let snapshot = PotentialSnapshot::compute(&exponential.deviations(), params.alpha);
    println!();
    println!(
        "exponential process after {steps} steps: Gamma/n = {:.2} (Theorem 3 says O(1))",
        snapshot.gamma_per_bin
    );

    // Insertion bias robustness.
    let mut biased = SequentialProcess::new(
        ProcessConfig::new(n)
            .with_beta(1.0)
            .with_bias_gamma(0.3)
            .with_seed(1),
    );
    let summary = biased.run_alternating(steps, floor);
    println!(
        "with insertion bias gamma = 0.3: mean rank {:.2} (still O(n) — bias robustness)",
        summary.mean_rank
    );
}
