//! Parallel single-source shortest paths on a synthetic road network — the
//! Figure 3 application — comparing the relaxed MultiQueue against an exact
//! coarse-locked heap.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dijkstra_sssp
//! ```
//!
//! Environment knobs (used by the CI smoke run): `SSSP_GRID` (grid side
//! length, default 200), `SSSP_THREADS` (parallel workers, default 4).

use std::time::Instant;

use power_of_choice::prelude::*;
use power_of_choice::util::env_u64;

fn main() {
    // A sparse road-like graph: side×side grid, random weights in [1, 1000].
    let side = env_u64("SSSP_GRID", 200).max(2) as usize;
    let graph = grid_graph(side, side, 1_000, 7);
    println!(
        "graph: {} nodes, {} directed edges (synthetic stand-in for a road network)",
        graph.nodes(),
        graph.edges()
    );

    // Exact sequential reference.
    let t0 = Instant::now();
    let reference = dijkstra(&graph, 0);
    println!("sequential Dijkstra: {:?}", t0.elapsed());

    let threads = env_u64("SSSP_THREADS", 4).max(1) as usize;

    // Relaxed MultiQueue, beta = 0.75 (the paper's sweet spot). Each SSSP
    // worker registers its own session handle on it.
    let mq = MultiQueue::<u32>::new(MultiQueueConfig::for_threads(threads).with_beta(0.75));
    let t1 = Instant::now();
    let (dist_mq, stats_mq) = parallel_sssp(&graph, 0, &mq, threads);
    println!(
        "parallel ({} threads, multiqueue beta=0.75): {:?}  stale pops: {:.1}%",
        threads,
        t1.elapsed(),
        stats_mq.stale_fraction() * 100.0
    );
    assert_eq!(dist_mq, reference, "relaxation must not change the answer");

    // Exact coarse-locked heap for contrast.
    let coarse = CoarseHeap::new();
    let t2 = Instant::now();
    let (dist_coarse, _) = parallel_sssp(&graph, 0, &coarse, threads);
    println!(
        "parallel ({} threads, coarse-locked heap):   {:?}",
        threads,
        t2.elapsed()
    );
    assert_eq!(dist_coarse, reference);

    let reachable = reference.iter().filter(|&&d| d != u64::MAX).count();
    let longest = reference
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    println!("reachable nodes: {reachable}, longest shortest path: {longest}");
    println!("all three distance vectors agree — relaxation costs extra work, not correctness");
}
