//! Parallel single-source shortest paths on a synthetic road network — the
//! Figure 3 application — comparing the relaxed MultiQueue against an exact
//! coarse-locked heap.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dijkstra_sssp
//! ```

use std::time::Instant;

use power_of_choice::prelude::*;

fn main() {
    // A sparse road-like graph: 200x200 grid, random weights in [1, 1000].
    let graph = grid_graph(200, 200, 1_000, 7);
    println!(
        "graph: {} nodes, {} directed edges (synthetic stand-in for a road network)",
        graph.nodes(),
        graph.edges()
    );

    // Exact sequential reference.
    let t0 = Instant::now();
    let reference = dijkstra(&graph, 0);
    println!("sequential Dijkstra: {:?}", t0.elapsed());

    let threads = 4;

    // Relaxed MultiQueue, beta = 0.75 (the paper's sweet spot). Each SSSP
    // worker registers its own session handle on it.
    let mq = MultiQueue::<u32>::new(MultiQueueConfig::for_threads(threads).with_beta(0.75));
    let t1 = Instant::now();
    let (dist_mq, stats_mq) = parallel_sssp(&graph, 0, &mq, threads);
    println!(
        "parallel ({} threads, multiqueue beta=0.75): {:?}  stale pops: {:.1}%",
        threads,
        t1.elapsed(),
        stats_mq.stale_fraction() * 100.0
    );
    assert_eq!(dist_mq, reference, "relaxation must not change the answer");

    // Exact coarse-locked heap for contrast.
    let coarse = CoarseHeap::new();
    let t2 = Instant::now();
    let (dist_coarse, _) = parallel_sssp(&graph, 0, &coarse, threads);
    println!(
        "parallel ({} threads, coarse-locked heap):   {:?}",
        threads,
        t2.elapsed()
    );
    assert_eq!(dist_coarse, reference);

    let reachable = reference.iter().filter(|&&d| d != u64::MAX).count();
    let longest = reference
        .iter()
        .filter(|&&d| d != u64::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    println!("reachable nodes: {reachable}, longest shortest path: {longest}");
    println!("all three distance vectors agree — relaxation costs extra work, not correctness");
}
