//! A relaxed priority task scheduler — the kind of workload the paper's
//! introduction motivates (branch-and-bound / priority schedulers such as
//! Galois), built on the MultiQueue.
//!
//! A pool of workers processes tasks with priorities (deadlines). Processing a
//! task may spawn follow-up tasks with later deadlines. Because the MultiQueue
//! is relaxed, a worker may occasionally run a task slightly out of priority
//! order; the example measures how much "priority lateness" that introduces
//! and shows that every task is still executed exactly once.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example task_scheduler
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use power_of_choice::prelude::*;

/// A unit of work: a synthetic task with a deadline-style priority.
#[derive(Clone, Copy, Debug)]
struct Task {
    id: u64,
    /// How many follow-up tasks this task spawns when executed.
    spawns: u32,
}

fn main() {
    let threads = 4;
    let initial_tasks = 20_000u64;
    let queue = MultiQueue::<Task>::new(MultiQueueConfig::for_threads(threads).with_beta(0.75));

    // Seed the scheduler with an initial batch of tasks; priorities are their
    // deadlines, ids are unique.
    let next_id = AtomicU64::new(0);
    {
        let mut seeder = queue.register();
        for i in 0..initial_tasks {
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            seeder.insert(
                i,
                Task {
                    id,
                    spawns: if i % 50 == 0 { 2 } else { 0 },
                },
            );
        }
    }

    let executed = AtomicUsize::new(0);
    let lateness_sum = AtomicU64::new(0);
    let executed_ids = collector::Collector::new();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = &queue;
            let executed = &executed;
            let lateness_sum = &lateness_sum;
            let next_id = &next_id;
            let executed_ids = &executed_ids;
            scope.spawn(move || {
                // One session handle per worker: its private RNG and sticky
                // state live here, not in thread-local storage.
                let mut session = queue.register();
                let mut last_deadline = 0u64;
                let mut ids = Vec::new();
                while let Some((deadline, task)) = session.delete_min() {
                    // A worker observing deadlines going backwards has hit a
                    // priority inversion; accumulate how far back.
                    if deadline < last_deadline {
                        lateness_sum.fetch_add(last_deadline - deadline, Ordering::Relaxed);
                    }
                    last_deadline = deadline;
                    ids.push(task.id);
                    executed.fetch_add(1, Ordering::Relaxed);
                    // Spawn follow-up tasks with later deadlines.
                    for s in 0..task.spawns {
                        let id = next_id.fetch_add(1, Ordering::Relaxed);
                        session.insert(deadline + 1_000 + s as u64, Task { id, spawns: 0 });
                    }
                }
                executed_ids.extend(ids);
            });
        }
    });

    let total_executed = executed.load(Ordering::Relaxed);
    let total_created = next_id.load(Ordering::Relaxed);
    let mut ids = executed_ids.take();
    ids.sort_unstable();
    ids.dedup();

    println!("tasks created:  {total_created}");
    println!("tasks executed: {total_executed}");
    println!(
        "unique task ids executed: {} (must equal tasks created)",
        ids.len()
    );
    println!(
        "total per-worker priority lateness observed: {} deadline units",
        lateness_sum.load(Ordering::Relaxed)
    );
    assert_eq!(total_executed as u64, total_created);
    assert_eq!(ids.len() as u64, total_created);
    println!("every task ran exactly once; relaxation only reordered work slightly");
}

/// A tiny thread-safe id collector (kept local to the example to avoid adding
/// dependencies to the façade crate).
mod collector {
    use std::sync::Mutex;

    /// Collects vectors of ids from worker threads.
    pub struct Collector {
        inner: Mutex<Vec<u64>>,
    }

    impl Collector {
        /// Creates an empty collector.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(Vec::new()),
            }
        }

        /// Appends a batch of ids.
        pub fn extend(&self, ids: Vec<u64>) {
            self.inner.lock().unwrap().extend(ids);
        }

        /// Takes the collected ids.
        pub fn take(&self) -> Vec<u64> {
            std::mem::take(&mut self.inner.lock().unwrap())
        }
    }
}
