//! A relaxed priority task scheduler — the application class the paper's
//! introduction motivates (branch-and-bound / priority schedulers such as
//! Galois), demonstrated as a thin client of the `choice-sched` subsystem.
//!
//! Two phases:
//!
//! 1. **Spawn trees** — a worker pool executes tasks that spawn follow-up
//!    tasks; the subsystem's termination detector proves quiescence and the
//!    run shows every task (seeded + spawned) executed exactly once, with
//!    the observed deadline-inversion *distribution* (a
//!    `rank_stats` log histogram, not a saturating sum) quantifying how
//!    much reordering the relaxation actually introduced.
//! 2. **Open-loop traffic** — the traffic engine injects a bursty,
//!    multi-class workload concurrently with execution and reports
//!    per-class lateness through the subsystem's `LatenessTracker`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example task_scheduler
//! ```
//!
//! Environment knobs (used by the CI smoke run): `SCHED_TASKS` (initial
//! tasks, default 20000), `SCHED_WORKERS` (default 4).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use power_of_choice::prelude::*;
use power_of_choice::sched::{ArrivalPattern, TrafficClass, TrafficSpec};
use power_of_choice::util::env_u64;

fn main() {
    let workers = env_u64("SCHED_WORKERS", 4) as usize;
    let initial_tasks = env_u64("SCHED_TASKS", 20_000);

    // ---- Phase 1: spawn trees, exactly-once, inversion distribution ----
    let queue = MultiQueue::<u64>::new(MultiQueueConfig::for_threads(workers).with_beta(0.75));
    let sched = Scheduler::new(&queue, SchedulerConfig::new(workers).with_delete_batch(4));

    // Seed the scheduler; ids are allocated from a shared counter so spawned
    // tasks get unique ids too. Every 50th task spawns two follow-ups.
    let next_id = AtomicU64::new(0);
    {
        let mut seeder = sched.injector();
        for deadline in 0..initial_tasks {
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            seeder.inject(deadline, id);
        }
    }
    let (report, worker_ids) = sched.run(
        |_worker| Vec::new(),
        |ids: &mut Vec<u64>, ctx, deadline, id| {
            ids.push(id);
            if id < initial_tasks && id % 50 == 0 {
                for s in 0..2u64 {
                    let child = next_id.fetch_add(1, Ordering::Relaxed);
                    ctx.spawn(deadline + 1_000 + s, child);
                }
            }
        },
    );

    let total_created = next_id.load(Ordering::Relaxed);
    let mut ids: Vec<u64> = worker_ids.into_iter().flatten().collect();
    ids.sort_unstable();
    ids.dedup();

    println!("== spawn-tree phase ==");
    println!(
        "tasks created:  {total_created} ({} spawned)",
        report.spawned
    );
    println!(
        "tasks executed: {} at {:.0} ktask/s across {workers} workers",
        report.executed,
        report.tasks_per_second / 1e3
    );
    println!(
        "unique ids executed: {} (must equal tasks created)",
        ids.len()
    );
    assert_eq!(report.executed, total_created);
    assert_eq!(ids.len() as u64, total_created);

    // The deadline-inversion distribution: how far "back in time" workers
    // jumped, in deadline units (log-bucketed).
    let inv = &report.inversions;
    println!(
        "deadline inversions: {} ({:.1} per 1k tasks), mean magnitude {:.1}, max {}",
        inv.count(),
        inv.count() as f64 * 1_000.0 / report.executed as f64,
        inv.mean(),
        inv.max()
    );
    for (upper, count) in inv.iter_nonzero() {
        println!("  magnitude ≤ {upper:>8}: {count}");
    }
    println!("every task ran exactly once; relaxation only reordered work slightly");

    // ---- Phase 2: open-loop multi-class traffic with lateness ----
    let spec = TrafficSpec {
        pattern: ArrivalPattern::Bursty {
            rate: 2_000_000.0,
            on: Duration::from_millis(2),
            off: Duration::from_millis(4),
        },
        classes: vec![
            TrafficClass::new("interactive", 3.0, Duration::from_micros(500), 32),
            TrafficClass::new("batch", 1.0, Duration::from_millis(10), 256),
        ],
        tasks: initial_tasks / 2,
        seed: 7,
    };
    let traffic_queue = MultiQueue::new(
        MultiQueueConfig::for_threads(workers)
            .with_beta(0.75)
            .with_seed(11),
    );
    let scenario = power_of_choice::sched::run_scenario(
        &traffic_queue,
        SchedulerConfig::new(workers).with_delete_batch(4),
        &spec,
    );

    println!();
    println!("== traffic phase: {} ==", scenario.label);
    println!(
        "{} tasks executed at {:.0} ktask/s",
        scenario.sched.executed,
        scenario.sched.tasks_per_second / 1e3
    );
    for (class, lateness) in spec.classes.iter().zip(scenario.lateness.classes()) {
        println!(
            "  {:<12} executed {:>6}, on time {:>5.1}%, lateness p50/p99 ≤ {}/{} µs",
            class.name,
            lateness.executed,
            lateness.on_time_fraction() * 100.0,
            lateness.lateness_quantile_us(0.50),
            lateness.lateness_quantile_us(0.99),
        );
    }
    assert_eq!(scenario.sched.executed, spec.tasks);
    assert!(traffic_queue.is_empty());
}
