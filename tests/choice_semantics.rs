//! Semantics of the configurable choice rule and of batched deletion.
//!
//! Three families of guarantees, all named by the PR that introduced
//! `ChoiceRule`:
//!
//! 1. **d = 1 degenerates to uniform single-lane sampling** — `DChoice(1)`
//!    is stream-identical to `SingleChoice`, and its victim lanes are
//!    uniformly distributed.
//! 2. **d = 2 reproduces the pre-`ChoiceRule` replay traces** — the golden
//!    traces below were captured from the engine *before* victim selection
//!    was routed through `ChoiceRule`; the default two-choice configuration
//!    must keep replaying them bit-for-bit.
//! 3. **`delete_min_batch(1)` is observationally identical to
//!    `delete_min`** — same elements, same order, same statistics.

use power_of_choice::multiqueue::ChoiceRule;
use power_of_choice::prelude::*;
use proptest::prelude::*;

fn queue_with(choice: ChoiceRule, lanes: usize, seed: u64) -> MultiQueue<u64> {
    MultiQueue::new(
        MultiQueueConfig::with_queues(lanes)
            .with_choice(choice)
            .with_seed(seed),
    )
}

/// Inserts a fixed scrambled key sequence and drains, returning popped keys.
fn scripted_trace(q: &MultiQueue<u64>, inserts: u64) -> Vec<u64> {
    let mut h = q.register();
    for k in 0..inserts {
        h.insert(k * 7 % inserts, k);
    }
    let mut out = Vec::new();
    while let Some((k, _)) = h.delete_min() {
        out.push(k);
    }
    out
}

/// Golden trace captured from the pre-`ChoiceRule` engine (flat β = 1
/// two-choice, 8 lanes, seed 42, 32 scrambled inserts): the refactored
/// engine must replay it exactly.
#[test]
fn two_choice_reproduces_the_pre_choicerule_golden_trace() {
    let golden = [
        0u64, 11, 3, 2, 5, 7, 6, 9, 13, 10, 1, 24, 8, 18, 4, 12, 27, 16, 17, 21, 14, 30, 29, 15,
        23, 20, 26, 31, 19, 22, 25, 28,
    ];
    let q = queue_with(ChoiceRule::TwoChoice, 8, 42);
    assert_eq!(scripted_trace(&q, 32), golden);
    // with_beta(1.0) normalises to the same rule and the same trace.
    let q = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(8)
            .with_beta(1.0)
            .with_seed(42),
    );
    assert_eq!(scripted_trace(&q, 32), golden);
}

/// Same capture for the (1 + β) rule (β = 0.75, 4 lanes, seed 7).
#[test]
fn one_plus_beta_reproduces_the_pre_choicerule_golden_trace() {
    let golden = [
        1u64, 7, 0, 3, 6, 8, 2, 9, 13, 10, 12, 15, 4, 14, 16, 19, 29, 18, 5, 22, 24, 31, 25, 27,
        11, 17, 26, 20, 21, 30, 23, 28,
    ];
    let q = queue_with(ChoiceRule::OnePlusBeta(0.75), 4, 7);
    assert_eq!(scripted_trace(&q, 32), golden);
}

/// Golden trace captured from the locked-lane engine (the `Mutex` front
/// door, before the seqlock top + borrow-state + side-buffer fast path):
/// batched sticky inserts (batch 8, sticky 4) and batched drains over 8
/// two-choice lanes, seed 2024. The lock-free fast path must replay it
/// bit-for-bit — uncontended, it consumes the RNG stream identically and
/// removes the same elements in the same order.
#[test]
fn lane_fastpath_reproduces_the_locked_path_golden_trace() {
    let golden = [
        1u64, 2, 3, 8, 0, 4, 5, 6, 7, 11, 12, 13, 9, 10, 15, 16, 14, 18, 19, 20, 21, 25, 26, 27,
        17, 22, 23, 24, 28, 33, 34, 35, 40, 41, 42, 47, 29, 30, 31, 32, 36, 37, 38, 39, 48, 49, 54,
        55, 56, 61, 62, 63, 43, 44, 45, 46, 50, 51, 52, 53, 57, 58, 59, 60,
    ];
    let q = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(8)
            .with_choice(ChoiceRule::TwoChoice)
            .with_seed(2024),
    );
    let mut h = q.register_policy(
        HandlePolicy::default()
            .with_insert_batch(8)
            .with_sticky_ops(4),
    );
    for k in 0..64u64 {
        h.insert(k * 7 % 64, k);
    }
    h.flush();
    let mut out = Vec::new();
    while h.delete_min_batch_into(4, &mut out) > 0 {}
    let keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, golden);
}

/// d = 1 victim lanes are uniform: run the sequential process (which records
/// the victim queue of every removal) and check no queue is over- or
/// under-sampled beyond loose binomial slack.
#[test]
fn d1_single_lane_sampling_is_uniform() {
    let n = 8usize;
    let removals = 40_000u64;
    let mut p = SequentialProcess::new(ProcessConfig::new(n).with_d(1).with_seed(99));
    p.prefill(removals + 10_000);
    let mut counts = vec![0u64; n];
    for _ in 0..removals {
        if let Some(r) = p.remove() {
            counts[r.queue] += 1;
        }
    }
    let total: u64 = counts.iter().sum();
    let mean = total as f64 / n as f64;
    for (queue, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64 - mean).abs() < 0.1 * mean,
            "queue {queue} sampled {c} times, mean {mean}: not uniform"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `DChoice(1)` and `SingleChoice` are the same process: identical
    /// removal streams on the concurrent queue for any seed and lane count.
    #[test]
    fn prop_d1_degenerates_to_single_choice(lanes in 1usize..10, seed in 0u64..500, ops in 1u64..300) {
        let qa = queue_with(ChoiceRule::DChoice(1), lanes, seed);
        let qb = queue_with(ChoiceRule::SingleChoice, lanes, seed);
        let mut ha = qa.register();
        let mut hb = qb.register();
        for k in 0..ops {
            ha.insert(k, k);
            hb.insert(k, k);
        }
        for _ in 0..=ops {
            prop_assert_eq!(ha.delete_min(), hb.delete_min());
        }
    }

    /// `OnePlusBeta(1.0)` and the normalised `TwoChoice` draw the same
    /// stream, so `with_beta(1.0)` configurations replay against explicit
    /// d = 2 ones.
    #[test]
    fn prop_beta_one_equals_two_choice(lanes in 1usize..10, seed in 0u64..500, ops in 1u64..300) {
        let qa = queue_with(ChoiceRule::OnePlusBeta(1.0), lanes, seed);
        let qb = queue_with(ChoiceRule::DChoice(2), lanes, seed);
        let mut ha = qa.register();
        let mut hb = qb.register();
        for k in 0..ops {
            ha.insert(k * 13 % ops, k);
            hb.insert(k * 13 % ops, k);
        }
        for _ in 0..=ops {
            prop_assert_eq!(ha.delete_min(), hb.delete_min());
        }
    }

    /// `delete_min_batch(1)` is observationally identical to `delete_min`:
    /// same elements in the same order under an interleaved insert/remove
    /// schedule, and the same session statistics.
    #[test]
    fn prop_batch_of_one_is_delete_min(
        lanes in 1usize..10,
        seed in 0u64..500,
        d in 1usize..5,
        rounds in 1u64..60,
    ) {
        let qa = queue_with(ChoiceRule::DChoice(d), lanes, seed);
        let qb = queue_with(ChoiceRule::DChoice(d), lanes, seed);
        let mut ha = qa.register();
        let mut hb = qb.register();
        for round in 0..rounds {
            for j in 0..3u64 {
                let key = (round * 31 + j * 7) % 97;
                ha.insert(key, round);
                hb.insert(key, round);
            }
            let single = ha.delete_min();
            let batched: Vec<(u64, u64)> = hb.delete_min_batch(1).collect();
            prop_assert_eq!(single.map(|e| vec![e]).unwrap_or_default(), batched);
        }
        // Drain both to the end through the two paths.
        loop {
            let single = ha.delete_min();
            let batched: Vec<(u64, u64)> = hb.delete_min_batch(1).collect();
            prop_assert_eq!(single.map(|e| vec![e]).unwrap_or_default(), batched.clone());
            if batched.is_empty() {
                break;
            }
        }
        prop_assert_eq!(ha.stats(), hb.stats());
    }

    /// Batched deletion conserves elements: interleaved batch inserts and
    /// batch removals of arbitrary sizes return every key exactly once.
    #[test]
    fn prop_batched_drain_conserves_elements(
        lanes in 1usize..10,
        seed in 0u64..500,
        d in 1usize..5,
        batch in 1usize..20,
        count in 1u64..400,
    ) {
        let q = queue_with(ChoiceRule::DChoice(d), lanes, seed);
        let mut h = q.register();
        for k in 0..count {
            h.insert(k, k);
        }
        let mut seen = Vec::new();
        let mut failures = 0;
        while seen.len() < count as usize {
            let got: Vec<u64> = h.delete_min_batch(batch).map(|(k, _)| k).collect();
            // Within one batch keys come off one lane heap: ascending order.
            prop_assert!(got.windows(2).all(|w| w[0] <= w[1]));
            if got.is_empty() {
                failures += 1;
                prop_assert!(failures < 3, "non-empty queue failed to yield a batch");
            }
            seen.extend(got);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..count).collect::<Vec<_>>());
        prop_assert!(q.is_empty());
    }
}

/// The steal path: when the sampled lanes miss the only occupied lane and the
/// retry budget is tiny, a batch must still come back via the deterministic
/// steal scan.
#[test]
fn batch_steal_path_finds_the_lone_occupied_lane() {
    for seed in 0..20u64 {
        let q = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_d(1)
                .with_seed(seed)
                .with_max_retries(1),
        );
        let mut h = q.register();
        h.insert(5, 50);
        let got: Vec<(u64, u64)> = h.delete_min_batch(4).collect();
        assert_eq!(got, vec![(5, 50)], "seed {seed}");
        assert!(q.is_empty());
    }
}

/// A d ≥ n rule inspects every lane, so sequential removals are exact even
/// across many lanes.
#[test]
fn d_at_least_n_is_an_exact_sequential_queue() {
    let q = queue_with(ChoiceRule::DChoice(16), 8, 3);
    let mut h = q.register();
    for k in [9u64, 4, 7, 1, 8, 2, 6, 3, 5, 0] {
        h.insert(k, k);
    }
    let mut out = Vec::new();
    while let Some((k, _)) = h.delete_min() {
        out.push(k);
    }
    assert_eq!(out, (0..10u64).collect::<Vec<_>>());
}
