//! Model-checks the flight-recorder / span-ring seqlock slot protocol
//! (DESIGN.md §11–§12).
//!
//! The model mirrors the slot discipline `choice_obs`'s `FlightRecorder`
//! and `SpanRing` share: writers take a ticket from a monotone head
//! counter, claim the slot by CAS-ing any *completed* (even) sequence to
//! the odd in-progress value `2·ticket+1`, write the payload words, then
//! publish `2·ticket+2`; readers accept a snapshot only when the sequence
//! was even before the payload reads **and unchanged after them**. The
//! payload carries a checkable invariant (`word2 = word0 + word1`), so a
//! torn snapshot — half old record, half new — is detectable in one
//! assert. Three variants run under every interleaving:
//!
//! * **faithful** — no reader ever accepts a torn snapshot (exhaustively
//!   checked);
//! * **publish-before-payload** — the writer publishes the even sequence
//!   before writing the words: some interleaving hands the reader a torn
//!   snapshot even though it revalidates;
//! * **skip-revalidation** — the writer is correct but the reader omits
//!   the second sequence read: a lapping writer tears the snapshot
//!   mid-read.
//!
//! Each broken variant's failing schedule replays deterministically, and
//! one is pinned as a schedule string so a regression in the explorer or
//! the protocol reproduces from this file alone.

use std::sync::Arc;

use check::sync::{AtomicU64, Ordering};
use choice_check as check;

/// Which protocol steps the model performs faithfully.
#[derive(Clone, Copy)]
struct Variant {
    /// Write the payload words *before* publishing the even sequence (the
    /// real protocol); `false` is the publish-first bug.
    payload_before_publish: bool,
    /// Re-read the sequence after the payload loads and discard the
    /// snapshot on a mismatch (the real protocol); `false` is the
    /// torn-read bug.
    revalidate: bool,
}

const FAITHFUL: Variant = Variant {
    payload_before_publish: true,
    revalidate: true,
};

/// One seqlock slot plus the ring's head ticket counter, reduced to a
/// single slot (capacity 1) so every second record *laps* it — the case
/// all the ordering rules exist for.
struct Slot {
    head: AtomicU64,
    seq: AtomicU64,
    words: [AtomicU64; 3],
}

impl Slot {
    fn new() -> Self {
        Self {
            head: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            words: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// The writer protocol: ticket, claim, payload, publish. The payload
    /// keeps the invariant `words[2] = a + b`.
    fn record(&self, a: u64, b: u64, variant: Variant) {
        let ticket = self.head.fetch_add(1, Ordering::SeqCst);
        let claimed = loop {
            let seq = self.seq.load(Ordering::SeqCst);
            if seq % 2 == 1 || seq > 2 * ticket + 1 {
                break false; // mid-write elsewhere, or a faster lap won
            }
            if self
                .seq
                .compare_exchange(seq, 2 * ticket + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break true;
            }
        };
        if !claimed {
            return; // lossy by design: drop, never block
        }
        let payload = |slot: &Self| {
            slot.words[0].store(a, Ordering::SeqCst);
            slot.words[1].store(b, Ordering::SeqCst);
            slot.words[2].store(a + b, Ordering::SeqCst);
        };
        if variant.payload_before_publish {
            payload(self);
            self.seq.store(2 * ticket + 2, Ordering::SeqCst);
        } else {
            // The bug: the slot reads as complete while the words are
            // still (partly) the previous record's.
            self.seq.store(2 * ticket + 2, Ordering::SeqCst);
            payload(self);
        }
    }

    /// The reader protocol: `None` is always safe (slot empty, mid-write,
    /// or overwritten during the read); `Some` must be an untorn record.
    fn read(&self, variant: Variant) -> Option<[u64; 3]> {
        let seq1 = self.seq.load(Ordering::SeqCst);
        if seq1 < 2 || seq1 % 2 == 1 {
            return None; // never written, or write in progress
        }
        let snapshot = [
            self.words[0].load(Ordering::SeqCst),
            self.words[1].load(Ordering::SeqCst),
            self.words[2].load(Ordering::SeqCst),
        ];
        if variant.revalidate && self.seq.load(Ordering::SeqCst) != seq1 {
            return None; // overwritten while we read: torn, discard
        }
        Some(snapshot)
    }
}

/// One completed record in the slot, a writer lapping it, and a reader
/// racing both: any accepted snapshot must satisfy the payload invariant.
fn lapped_reader_model(variant: Variant) {
    let slot = Arc::new(Slot::new());
    // Ticket 0 completes before the race: the slot holds (1, 2, 3).
    slot.record(1, 2, FAITHFUL);
    let sw = Arc::clone(&slot);
    let writer = check::spawn(move || sw.record(5, 6, variant));
    let sr = Arc::clone(&slot);
    let reader = check::spawn(move || {
        if let Some([a, b, c]) = sr.read(variant) {
            assert!(
                a + b == c,
                "torn slot snapshot: [{a}, {b}, {c}] was never recorded"
            );
        }
    });
    writer.join();
    reader.join();
    // Quiescent state: the lap always completes and must itself be untorn.
    assert_eq!(
        slot.read(FAITHFUL),
        Some([5, 6, 11]),
        "the lapping record must be fully visible after both threads join"
    );
}

#[test]
fn faithful_seqlock_never_surfaces_a_torn_snapshot() {
    let report = check::explore(check::Config::dfs(200_000), || {
        lapped_reader_model(FAITHFUL)
    })
    .expect("claim/payload/publish with a revalidating reader cannot tear");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn publishing_before_the_payload_tears_even_a_revalidating_reader() {
    let variant = Variant {
        payload_before_publish: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(200_000), move || {
        lapped_reader_model(variant)
    })
    .expect_err("an even sequence over half-written words must be observable");
    assert!(
        failure.message.contains("torn slot snapshot"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.schedule.is_empty());
    // The printed schedule reproduces the identical failure, twice.
    for _ in 0..2 {
        let replayed = check::replay(&failure.schedule, move || lapped_reader_model(variant))
            .expect_err("failing schedule must replay deterministically");
        assert_eq!(replayed.message, failure.message);
    }
}

#[test]
fn skipping_the_reread_accepts_a_lapped_torn_snapshot() {
    let variant = Variant {
        revalidate: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(200_000), move || {
        lapped_reader_model(variant)
    })
    .expect_err("without the second sequence read a lapping writer tears the snapshot");
    assert!(
        failure.message.contains("torn slot snapshot"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || lapped_reader_model(variant))
        .expect_err("failing schedule must replay");
    assert_eq!(replayed.message, failure.message);
}

// ---------------------------------------------------------------------------
// Pinned replay regression (schedule string captured from the DFS run
// above; regenerate by printing `failure.schedule` if the model changes).
// ---------------------------------------------------------------------------

/// Replays the recorded torn-snapshot schedule for the publish-first bug.
#[test]
fn pinned_schedule_replays_the_publish_first_bug() {
    let variant = Variant {
        payload_before_publish: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(200_000), move || {
        lapped_reader_model(variant)
    })
    .expect_err("exploration finds the bug");
    assert_eq!(
        failure.schedule, PINNED_PUBLISH_FIRST,
        "DFS is deterministic: first failing schedule is stable; \
         update the pinned constant if the model legitimately changed"
    );
    let replayed = check::replay(PINNED_PUBLISH_FIRST, move || lapped_reader_model(variant))
        .expect_err("pinned schedule still fails");
    assert!(replayed.message.contains("torn slot snapshot"));
}

/// First failing DFS schedule for
/// `publishing_before_the_payload_tears_even_a_revalidating_reader`.
const PINNED_PUBLISH_FIRST: &str = "0,0,0,0,0,0,0,0,0,0,1,1,1,1,1,1,1,2,2,2,2,2,1,0,2";
