//! Conformance and stress semantics of the sharded **elastic** engine —
//! the suite every current and future backend must pass.
//!
//! Three layers of guarantees:
//!
//! 1. **Exactly-once delivery and key conservation across forced
//!    grow/shrink events**, run over all four backends through the erased
//!    [`DynSharedPq`] interface at 4 and 8 threads. Backends without a lane
//!    table take the trivial resize policy (forcing a resize is a no-op) and
//!    must pass the identical property.
//! 2. **Property tests**: random operation sequences interleaved with random
//!    resize commands preserve the multiset of keys and never surface the
//!    reserved `Key::MAX`.
//! 3. **Replay determinism**: a single-handle script over a fixed-seed
//!    elastic sharded queue is byte-identical run to run; the golden trace
//!    below is pinned so a future engine change that silently perturbs the
//!    removal stream fails loudly (the same methodology as
//!    `tests/choice_semantics.rs`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use power_of_choice::multiqueue::{ElasticPolicy, QueueTopology};
use power_of_choice::prelude::*;
use proptest::prelude::*;

/// One backend under conformance test: its erased queue plus a resize hook
/// (the trivial policy — a no-op — for backends without a lane table).
struct Backend {
    name: &'static str,
    queue: Arc<dyn DynSharedPq<u64>>,
    /// Forces the active lane set towards `target`; returns whether anything
    /// changed. Trivial (always `false`) for non-elastic backends.
    resize: Box<dyn Fn(usize) -> bool + Send + Sync>,
}

/// The four backends of the paper's comparison, each behind `DynSharedPq`.
/// Only the MultiQueue takes a real elastic policy; the rest take the
/// trivial one, so the conformance property is identical for all.
fn backends(threads: usize, seed: u64) -> Vec<Backend> {
    let elastic = Arc::new(MultiQueue::<u64>::new(
        MultiQueueConfig::for_threads_with_factor(threads, 4)
            .with_shards(2)
            .with_seed(seed)
            .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
    ));
    let resize_handle = Arc::clone(&elastic);
    vec![
        Backend {
            name: "multiqueue-elastic",
            queue: elastic,
            resize: Box::new(move |target| resize_handle.resize_active(target)),
        },
        Backend {
            name: "coarse-heap",
            queue: Arc::new(CoarseHeap::new()),
            resize: Box::new(|_| false),
        },
        Backend {
            name: "skiplist",
            queue: Arc::new(SkipListQueue::with_seed(seed)),
            resize: Box::new(|_| false),
        },
        Backend {
            name: "klsm",
            queue: Arc::new(KLsmQueue::new(
                KLsmConfig::for_threads(threads).with_relaxation(256),
            )),
            resize: Box::new(|_| false),
        },
    ]
}

/// The conformance property: `threads` workers insert disjoint key ranges
/// interleaved with removals while a controller thread forces grow/shrink
/// events; afterwards the union of everything removed and everything still
/// drainable must be exactly the inserted set — nothing lost, nothing
/// duplicated, and never the reserved `Key::MAX`.
fn exactly_once_under_forced_resizes(threads: usize, per_thread: u64, seed: u64) {
    for backend in backends(threads, seed) {
        let queue = &backend.queue;
        let stop = AtomicBool::new(false);
        let removed: Vec<u64> = std::thread::scope(|scope| {
            let resizer = scope.spawn(|| {
                // Sweep the whole range so both single-step and multi-step
                // grows/shrinks happen; trivial-policy backends just spin
                // no-ops, preserving the identical thread interleaving
                // pressure.
                let targets = [2usize, 64, 4, 16, 2, 64];
                let mut i = 0;
                while !stop.load(Ordering::Relaxed) {
                    (backend.resize)(targets[i % targets.len()]);
                    i += 1;
                    std::thread::yield_now();
                }
            });
            let mut workers = Vec::new();
            for t in 0..threads as u64 {
                let queue = Arc::clone(queue);
                workers.push(scope.spawn(move || {
                    let mut handle = queue.register_dyn();
                    let base = t * per_thread;
                    let mut got = Vec::new();
                    let mut batch = Vec::new();
                    for i in 0..per_thread {
                        handle.insert(base + i, base + i);
                        // Mix the single and batched removal paths.
                        match i % 4 {
                            1 => {
                                if let Some((k, _)) = handle.delete_min() {
                                    got.push(k);
                                }
                            }
                            3 => {
                                batch.clear();
                                handle.delete_min_batch_into(3, &mut batch);
                                got.extend(batch.iter().map(|(k, _)| *k));
                            }
                            _ => {}
                        }
                    }
                    got
                }));
            }
            let removed: Vec<u64> = workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect();
            stop.store(true, Ordering::Relaxed);
            resizer.join().unwrap();
            removed
        });

        assert!(
            removed.iter().all(|&k| k != Key::MAX),
            "{}: the reserved key must never surface",
            backend.name
        );
        let mut all = removed;
        let mut drainer = queue.register_dyn();
        while let Some((k, _)) = drainer.delete_min() {
            all.push(k);
        }
        all.sort_unstable();
        let expected: Vec<u64> = (0..threads as u64 * per_thread).collect();
        assert_eq!(
            all.len(),
            expected.len(),
            "{} at {} threads: lost or duplicated keys",
            backend.name,
            threads
        );
        assert_eq!(
            all, expected,
            "{} at {} threads: multiset mismatch",
            backend.name, threads
        );
    }
}

#[test]
fn exactly_once_under_forced_resizes_at_4_threads() {
    exactly_once_under_forced_resizes(4, 4_000, 0xE1A5);
}

#[test]
fn exactly_once_under_forced_resizes_at_8_threads() {
    exactly_once_under_forced_resizes(8, 2_000, 0xE1A6);
}

/// Forced shrinks while another session's private insert buffer is still
/// unflushed: the buffered elements are outside the structure by contract,
/// and flushing *after* the shrink must still land them in active lanes.
#[test]
fn buffered_inserts_survive_resizes_around_the_flush() {
    let q = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(16)
            .with_shards(2)
            .with_seed(77)
            .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
    );
    q.resize_active(16);
    let mut buffered = q.register_policy(HandlePolicy::default().with_insert_batch(64));
    for k in 0..32u64 {
        buffered.insert(k, k);
    }
    assert_eq!(q.approx_len(), 0, "still private");
    assert!(q.resize_active(2), "shrink with the buffer outstanding");
    buffered.flush();
    assert_eq!(q.approx_len(), 32);
    let lengths = q.lane_lengths();
    assert!(
        lengths[2..].iter().all(|&l| l == 0),
        "the late flush must respect the shrunk lane table: {lengths:?}"
    );
    drop(buffered);
    let mut h = q.register();
    let mut out: Vec<u64> = Vec::new();
    while let Some((k, _)) = h.delete_min() {
        out.push(k);
    }
    out.sort_unstable();
    assert_eq!(out, (0..32u64).collect::<Vec<_>>());
}

/// The topology snapshot is wired through the erased interface for every
/// backend: centralized structures report the trivial shape, the elastic
/// MultiQueue its live lane table.
#[test]
fn every_backend_reports_a_topology() {
    for backend in backends(2, 3) {
        let shape = backend.queue.topology_dyn();
        if backend.name == "multiqueue-elastic" {
            assert_eq!(shape.max_lanes, 8);
            assert_eq!(shape.shards, 2);
            assert!(shape.active_lanes >= 2);
        } else {
            assert_eq!(
                shape,
                QueueTopology::centralized(),
                "{}: centralized backends report the trivial shape",
                backend.name
            );
        }
    }
}

/// Applies one scripted op to the queue-under-test and the reference
/// multiset. Ops: 0 = insert, 1 = delete_min, 2 = batched delete, 3 =
/// resize.
fn apply_op(
    q: &MultiQueue<u64>,
    h: &mut <MultiQueue<u64> as SharedPq<u64>>::Handle<'_>,
    live: &mut HashMap<u64, u64>,
    op: u8,
    arg: u64,
) {
    match op % 4 {
        0 => {
            let key = arg % (Key::MAX - 1); // never the reserved key
            h.insert(key, key);
            *live.entry(key).or_insert(0) += 1;
        }
        1 => {
            if let Some((k, v)) = h.delete_min() {
                assert_ne!(k, Key::MAX, "reserved key surfaced");
                assert_eq!(k, v);
                let slot = live.get_mut(&k).expect("removed a key never inserted");
                *slot -= 1;
                if *slot == 0 {
                    live.remove(&k);
                }
            }
        }
        2 => {
            let mut out = Vec::new();
            h.delete_min_batch_into((arg % 7) as usize + 1, &mut out);
            for (k, v) in out {
                assert_ne!(k, Key::MAX, "reserved key surfaced");
                assert_eq!(k, v);
                let slot = live.get_mut(&k).expect("removed a key never inserted");
                *slot -= 1;
                if *slot == 0 {
                    live.remove(&k);
                }
            }
        }
        _ => {
            q.resize_active((arg % 40) as usize); // clamps internally
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random op sequences interleaved with random resize commands preserve
    /// the multiset of keys (checked against a reference counter) and never
    /// return the reserved `Key::MAX`.
    #[test]
    fn prop_random_ops_and_resizes_conserve_the_multiset(
        seed in 0u64..10_000,
        shards in 1usize..5,
        ops in proptest::collection::vec(0u8..=255, 1..400),
        args in proptest::collection::vec(0u64..=u64::MAX, 400..401),
    ) {
        let q = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(32)
                .with_shards(shards)
                .with_seed(seed)
                .with_elastic(
                    ElasticPolicy::default()
                        .with_min_lanes(2)
                        .with_check_interval(64)
                        .with_cooldown_checks(0),
                ),
        );
        let mut h = q.register();
        let mut live: HashMap<u64, u64> = HashMap::new();
        for (i, &op) in ops.iter().enumerate() {
            apply_op(&q, &mut h, &mut live, op, args[i % args.len()].wrapping_add(i as u64));
        }
        // The structure's count matches the reference multiset…
        prop_assert_eq!(q.approx_len() as u64, live.values().sum::<u64>());
        // …and draining returns exactly the outstanding multiset.
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            prop_assert!(k != Key::MAX, "reserved key surfaced in the drain");
            out.push(k);
        }
        let mut expected: Vec<u64> = live
            .iter()
            .flat_map(|(&k, &n)| std::iter::repeat_n(k, n as usize))
            .collect();
        expected.sort_unstable();
        out.sort_unstable();
        prop_assert_eq!(out, expected);
    }

    /// Replay determinism under elasticity: the same seed and script produce
    /// the identical removal stream on two independently built queues.
    #[test]
    fn prop_single_handle_replay_is_deterministic(
        seed in 0u64..5_000,
        ops in proptest::collection::vec(0u8..=255, 1..200),
    ) {
        let build = || MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_shards(2)
                .with_seed(seed)
                .with_elastic(ElasticPolicy::default().with_min_lanes(2).with_check_interval(32)),
        );
        let (qa, qb) = (build(), build());
        let mut ha = qa.register();
        let mut hb = qb.register();
        for (i, &op) in ops.iter().enumerate() {
            let arg = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            match op % 3 {
                0 => {
                    ha.insert(arg % 1_000, 0);
                    hb.insert(arg % 1_000, 0);
                }
                1 => {
                    prop_assert_eq!(ha.delete_min(), hb.delete_min());
                }
                _ => {
                    qa.resize_active((arg % 20) as usize);
                    qb.resize_active((arg % 20) as usize);
                }
            }
        }
        loop {
            let (a, b) = (ha.delete_min(), hb.delete_min());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(qa.resize_epoch(), qb.resize_epoch());
        prop_assert_eq!(qa.active_lanes(), qb.active_lanes());
    }
}

/// A fixed single-handle script over the elastic sharded engine: 48
/// scrambled inserts with two explicit resizes woven in, then a full drain.
/// Returns the popped keys.
fn scripted_elastic_trace(q: &MultiQueue<u64>) -> Vec<u64> {
    let mut h = q.register();
    let mut out = Vec::new();
    for k in 0..48u64 {
        h.insert(k * 11 % 48, k);
        if k == 15 {
            q.resize_active(16); // grow mid-insert
        }
        if k == 31 {
            q.resize_active(4); // shrink with 32 elements live
        }
        if k % 8 == 7 {
            if let Some((popped, _)) = h.delete_min() {
                out.push(popped);
            }
        }
    }
    while let Some((k, _)) = h.delete_min() {
        out.push(k);
    }
    out
}

/// Golden trace of the elastic engine (16-lane capacity, 2 shards, floor 4,
/// seed 1234): pinned at the PR that introduced elasticity. A change to the
/// RNG stream consumption, the shard stride, the resize protocol or the
/// refugee redistribution order will break this loudly — that is the point.
#[test]
fn elastic_replay_reproduces_the_pinned_golden_trace() {
    let build = || {
        MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(16)
                .with_shards(2)
                .with_seed(1234)
                .with_elastic(ElasticPolicy::default().with_min_lanes(4)),
        )
    };
    let golden = [
        0u64, 3, 6, 5, 2, 1, 9, 8, 10, 4, 7, 17, 20, 13, 11, 16, 19, 12, 32, 14, 43, 15, 25, 28,
        30, 34, 35, 18, 37, 21, 22, 40, 41, 45, 23, 24, 26, 27, 46, 47, 29, 31, 33, 36, 38, 39, 42,
        44,
    ];
    let trace = scripted_elastic_trace(&build());
    // Run-to-run determinism first (a fresh queue, the same script)…
    assert_eq!(trace, scripted_elastic_trace(&build()));
    // …then the pinned capture.
    assert_eq!(
        trace, golden,
        "elastic replay diverged from the pinned trace"
    );
}
