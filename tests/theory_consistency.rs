//! Integration tests tying the analysis-side crates together: the rank
//! equivalence of Theorem 2, the Appendix A reduction, and the agreement
//! between the balls-into-bins substrate and the labelled process.

use power_of_choice::balls_bins::{ChoiceRule, LongLivedProcess};
use power_of_choice::prelude::*;
use power_of_choice::process::coupling::distance_to_theory;
use power_of_choice::process::{rank_occupancy_distance, RankOccupancy, RoundRobinProcess};

/// Theorem 2 at integration scale: original vs. exponential rank occupancy,
/// uniform and biased, are statistically indistinguishable.
#[test]
fn rank_distribution_equivalence_holds_uniform_and_biased() {
    for cfg in [
        ProcessConfig::new(8).with_seed(71),
        ProcessConfig::new(8).with_bias_gamma(0.4).with_seed(71),
    ] {
        let original = RankOccupancy::of_original(&cfg, 10_000, 12);
        let exponential = RankOccupancy::of_exponential(&cfg, 10_000, 12);
        let theory = cfg.insertion_probabilities();
        assert!(rank_occupancy_distance(&original, &exponential) < 0.03);
        assert!(distance_to_theory(&original, &theory) < 0.02);
        assert!(distance_to_theory(&exponential, &theory) < 0.02);
    }
}

/// Appendix A: the virtual-bin gap of the round-robin labelled process matches
/// the gap of the raw two-choice balls-into-bins process run for the same
/// number of steps (they are literally the same process under the reduction).
#[test]
fn round_robin_reduction_matches_balls_into_bins() {
    let n = 32;
    let steps = n as u64 * 2_000;

    let mut labelled = RoundRobinProcess::new(n, ChoiceRule::TwoChoice, 13);
    labelled.prefill(steps + n as u64 * 100);
    labelled.run_removals(steps);
    let labelled_gap = labelled.virtual_bin_stats().gap_above_mean;

    let mut raw = LongLivedProcess::new(n, ChoiceRule::TwoChoice, 14);
    raw.run(steps);
    let raw_gap = raw.stats().gap_above_mean;

    // Both gaps are O(log log n): tiny constants. They will not be equal (the
    // random streams differ) but they live in the same narrow band, far from
    // the single-choice gap on the same schedule.
    let mut single = LongLivedProcess::new(n, ChoiceRule::SingleChoice, 14);
    single.run(steps);
    let single_gap = single.stats().gap_above_mean;

    assert!(labelled_gap <= 6.0, "labelled virtual gap {labelled_gap}");
    assert!(raw_gap <= 6.0, "raw two-choice gap {raw_gap}");
    assert!(
        single_gap > labelled_gap.max(raw_gap) * 2.0,
        "single-choice gap {single_gap} should dwarf the two-choice gaps"
    );
}

/// The labelled process's mean rank and the balls-into-bins gap tell the same
/// story across the β sweep: more choice, less imbalance, smaller ranks.
#[test]
fn beta_sweep_is_monotone_in_both_views() {
    let n = 16;
    let betas = [1.0, 0.5, 0.0];
    let mut ranks = Vec::new();
    let mut gaps = Vec::new();
    for &beta in &betas {
        let mut p = SequentialProcess::new(ProcessConfig::new(n).with_beta(beta).with_seed(2));
        ranks.push(p.run_alternating(50_000, n as u64 * 1_000).mean_rank);
        let mut b = LongLivedProcess::new(n, ChoiceRule::OnePlusBeta(beta), 2);
        b.run(50_000);
        gaps.push(b.stats().gap_above_mean);
    }
    assert!(
        ranks[0] < ranks[1] && ranks[1] < ranks[2],
        "ranks {ranks:?}"
    );
    assert!(gaps[0] < gaps[2], "gaps {gaps:?}");
}

/// The exponential process's spread (Lemma 4) is what bounds the max rank
/// (Theorem 4): check the two quantities scale together across n.
#[test]
fn top_spread_and_max_rank_scale_together() {
    let mut spreads = Vec::new();
    let mut max_ranks = Vec::new();
    for &n in &[8usize, 32] {
        let mut exp = ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(6));
        exp.run(100_000);
        spreads.push(exp.top_spread() / n as f64);

        let mut seq = SequentialProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(6));
        max_ranks.push(seq.run_alternating(100_000, n as u64 * 500).max_rank as f64 / n as f64);
    }
    // Both normalised quantities grow (roughly like log n) with n — at the
    // very least, they must not *shrink* drastically.
    assert!(spreads[1] > spreads[0] * 0.5, "spreads {spreads:?}");
    assert!(max_ranks[1] > max_ranks[0] * 0.5, "max ranks {max_ranks:?}");
}
