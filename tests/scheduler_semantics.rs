//! Integration tests for the `choice-sched` subsystem: exactly-once
//! execution across every backend, termination under the Appendix C
//! stalled-worker pathology, deterministic single-worker replay, and
//! conservation under random spawn trees.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use power_of_choice::prelude::*;
use proptest::prelude::*;

/// The four structures the paper compares, type-erased so one scheduler
/// drives them all.
fn backends(workers: usize, seed: u64) -> Vec<Arc<dyn DynSharedPq<u64>>> {
    vec![
        Arc::new(MultiQueue::new(
            MultiQueueConfig::for_threads(workers).with_seed(seed),
        )),
        Arc::new(CoarseHeap::new()),
        Arc::new(SkipListQueue::with_seed(seed)),
        Arc::new(KLsmQueue::new(
            KLsmConfig::for_threads(workers).with_relaxation(64),
        )),
    ]
}

/// Every backend executes every seeded and every spawned task exactly once,
/// at 4 and at 8 workers (oversubscribed on small machines — exactly the
/// regime where lost wakeups or premature termination would show).
#[test]
fn exactly_once_execution_across_all_backends() {
    let initial = 2_000u64;
    for workers in [4usize, 8] {
        for queue in backends(workers, 99) {
            let name = queue.name();
            let sched = Scheduler::new(&*queue, SchedulerConfig::new(workers).with_delete_batch(4));
            let next_id = AtomicU64::new(initial);
            {
                let mut seeder = sched.injector();
                for id in 0..initial {
                    seeder.inject(id, id);
                }
            }
            // Seeded tasks divisible by 10 spawn two children; children
            // (ids >= initial) never spawn, so the tree is bounded.
            let (report, worker_ids) = sched.run(
                |_| Vec::new(),
                |ids: &mut Vec<u64>, ctx, deadline, id| {
                    ids.push(id);
                    if id < initial && id % 10 == 0 {
                        for _ in 0..2 {
                            let child = next_id.fetch_add(1, Ordering::Relaxed);
                            ctx.spawn(deadline + 10_000, child);
                        }
                    }
                },
            );
            let total = next_id.load(Ordering::Relaxed);
            assert_eq!(report.executed, total, "{name} at {workers} workers");
            assert_eq!(report.spawned, total - initial, "{name}");
            let mut ids: Vec<u64> = worker_ids.into_iter().flatten().collect();
            ids.sort_unstable();
            let expected: Vec<u64> = (0..total).collect();
            assert_eq!(
                ids, expected,
                "{name} at {workers} workers must run every id exactly once"
            );
            assert!(queue.is_empty(), "{name} left tasks behind");
            // Termination requires each worker to have actually observed
            // emptiness (the empty_polls counter, not a contention race).
            assert!(
                report.empty_polls() >= workers as u64,
                "{name}: every worker must observe quiescent emptiness"
            );
        }
    }
}

/// Appendix C pathology at the scheduler layer: a stalled thread holds a
/// lane lock while the pool runs. Operations route around the hostage lane
/// (or block briefly on the steal path), and the termination detector must
/// neither fire early nor hang — every task still runs exactly once.
#[test]
fn terminates_with_a_stalled_worker_holding_a_lane_lock() {
    let queue = MultiQueue::<u64>::new(MultiQueueConfig::for_threads(4).with_seed(17));
    let sched = Scheduler::new(&queue, SchedulerConfig::new(4));
    {
        let mut seeder = sched.injector();
        for id in 0..5_000u64 {
            seeder.inject(id, id);
        }
    }
    let (report, worker_ids) = std::thread::scope(|scope| {
        scope.spawn(|| {
            queue.with_lane_locked(0, || {
                std::thread::sleep(Duration::from_millis(100));
            })
        });
        sched.run(
            |_| Vec::new(),
            |ids: &mut Vec<u64>, _ctx, _deadline, id| ids.push(id),
        )
    });
    assert_eq!(report.executed, 5_000);
    let mut ids: Vec<u64> = worker_ids.into_iter().flatten().collect();
    ids.sort_unstable();
    assert_eq!(ids, (0..5_000u64).collect::<Vec<_>>());
    assert!(queue.is_empty());
}

/// A single worker over a seeded MultiQueue replays exactly: same seed and
/// registration order ⇒ same handle RNG streams ⇒ same pop sequence ⇒ same
/// execution order, spawns included.
#[test]
fn deterministic_single_worker_replay() {
    let run_once = || {
        let queue = MultiQueue::<u64>::new(MultiQueueConfig::with_queues(8).with_seed(12345));
        let sched = Scheduler::new(&queue, SchedulerConfig::new(1).with_delete_batch(3));
        {
            let mut seeder = sched.injector();
            for id in 0..3_000u64 {
                seeder.inject(id, id);
            }
        }
        let next_id = AtomicU64::new(3_000);
        let (report, mut orders) = sched.run(
            |_| Vec::new(),
            |order: &mut Vec<u64>, ctx, deadline, id| {
                order.push(id);
                if id < 3_000 && id % 7 == 0 {
                    let child = next_id.fetch_add(1, Ordering::Relaxed);
                    ctx.spawn(deadline + 5_000, child);
                }
            },
        );
        assert_eq!(report.executed as usize, orders[0].len());
        orders.pop().unwrap()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first.len(), 3_000 + 3_000_usize.div_ceil(7));
    assert_eq!(
        first, second,
        "single-worker execution order must be a pure function of the seed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation under random spawn trees: each seeded task carries a
    /// depth; every task of depth > 0 spawns two children of depth - 1, so
    /// a seed of depth d contributes 2^(d+1) - 1 executions. The scheduler
    /// must execute exactly injected + spawned tasks, and that total must
    /// match the independently computed forest size.
    #[test]
    fn prop_total_executed_is_injected_plus_spawned(
        depths in proptest::collection::vec(0u64..4, 1..40),
        workers in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let queue = MultiQueue::<u64>::new(
            MultiQueueConfig::for_threads(workers).with_seed(seed),
        );
        let sched = Scheduler::new(&queue, SchedulerConfig::new(workers));
        {
            let mut seeder = sched.injector();
            for (i, &depth) in depths.iter().enumerate() {
                seeder.inject(i as u64, depth);
            }
        }
        let (report, _) = sched.run_simple(|ctx, deadline, depth| {
            if depth > 0 {
                ctx.spawn(deadline + 1_000, depth - 1);
                ctx.spawn(deadline + 1_001, depth - 1);
            }
        });
        let expected: u64 = depths.iter().map(|&d| (1u64 << (d + 1)) - 1).sum();
        prop_assert_eq!(report.executed, expected);
        prop_assert_eq!(report.executed, depths.len() as u64 + report.spawned);
        prop_assert!(queue.is_empty());
    }
}
