//! Integration tests: the paper's headline guarantees hold end-to-end, from
//! the sequential analysis processes through the concurrent MultiQueue.

use std::sync::atomic::{AtomicU64, Ordering};

use power_of_choice::prelude::*;

/// Runs the Figure 2 style concurrent workload and returns the mean rank.
/// Removal timestamps come from instrumented session handles
/// (`HandlePolicy::instrumented()`), which share the queue's coherent clock.
fn concurrent_mean_rank(beta: f64, threads: usize, queues: usize, per_thread: u64) -> f64 {
    let prefill = 200_000u64;
    let queue = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(queues)
            .with_beta(beta)
            .with_seed(99),
    );
    // Prefill so removals never observe an empty structure (prefixed run).
    {
        let mut loader = queue.register();
        for k in 0..prefill {
            loader.insert(k, k);
        }
    }
    let next_key = AtomicU64::new(prefill);
    let logs: Vec<_> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let queue = &queue;
            let next_key = &next_key;
            handles.push(scope.spawn(move || {
                let mut handle = queue.register_with(HandlePolicy::instrumented());
                for _ in 0..per_thread {
                    let key = next_key.fetch_add(1, Ordering::Relaxed);
                    handle.insert(key, key);
                    handle.delete_min();
                }
                handle.take_log()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut counter = InversionCounter::new();
    for log in logs {
        counter.record_all(log);
    }
    let summary = counter.summarize();
    assert_eq!(summary.removals, threads as u64 * per_thread);
    summary.mean_rank
}

/// Theorem 1 end-to-end on the *concurrent* MultiQueue.
///
/// When worker threads outnumber hardware threads (this CI environment has a
/// single core), the OS can preempt a worker while it holds a lane lock, which
/// is exactly the Appendix C pathology: ranks can temporarily grow far beyond
/// the sequential O(n) bound. The robust end-to-end claims are therefore
/// relative: the two-choice MultiQueue must be dramatically better than the
/// single-choice configuration under the identical schedule, and even with
/// oversubscription it must stay far below the ~100k ranks an unordered
/// structure would produce. The sequential O(n) bound itself is asserted on
/// the single-threaded run, which is the model the theorem describes.
#[test]
fn concurrent_multiqueue_mean_rank_is_order_n() {
    let queues = 8;
    // Single-threaded: mirrors the sequential model, so the O(n) bound applies.
    let sequential_like = concurrent_mean_rank(1.0, 1, queues, 60_000);
    assert!(
        sequential_like < 4.0 * queues as f64,
        "single-threaded mean rank {sequential_like} should be O(n) (n = {queues})"
    );

    // Oversubscribed: two-choice must crush single-choice on the same setup
    // and stay well below the unordered-structure scale.
    let two_choice = concurrent_mean_rank(1.0, 4, queues, 20_000);
    let single_choice = concurrent_mean_rank(0.0, 4, queues, 20_000);
    assert!(
        two_choice < 20_000.0,
        "two-choice oversubscribed mean rank {two_choice} is implausibly large"
    );
    assert!(
        two_choice < single_choice,
        "two-choice ({two_choice}) must beat single-choice ({single_choice}) under load"
    );
}

/// The sequential process and the concurrent structure agree qualitatively:
/// both show the β ordering (smaller β ⇒ larger mean rank).
#[test]
fn sequential_and_concurrent_beta_orderings_agree() {
    let queues = 8;
    // Sequential process.
    let seq_rank = |beta: f64| {
        let mut p = SequentialProcess::new(ProcessConfig::new(queues).with_beta(beta).with_seed(3));
        p.run_alternating(60_000, 4_000).mean_rank
    };
    let seq_tight = seq_rank(1.0);
    let seq_loose = seq_rank(0.125);
    assert!(seq_loose > seq_tight);

    // Concurrent structure, single-threaded (so it mirrors the model exactly).
    let conc_rank = |beta: f64| {
        let queue = MultiQueue::<u64>::new(
            MultiQueueConfig::with_queues(queues)
                .with_beta(beta)
                .with_seed(3),
        );
        let mut session = queue.register();
        for k in 0..60_000u64 {
            session.insert(k, k);
        }
        let mut counter = InversionCounter::new();
        let mut ts = 0;
        while let Some((k, _)) = session.delete_min() {
            counter.record(ts, k);
            ts += 1;
        }
        counter.summarize().mean_rank
    };
    let conc_tight = conc_rank(1.0);
    let conc_loose = conc_rank(0.125);
    assert!(conc_loose > conc_tight);
}

/// Theorem 6 end-to-end: the single-choice configuration degrades with the
/// execution length while the two-choice configuration does not.
#[test]
fn single_choice_degrades_two_choice_does_not() {
    let queues = 16;
    let run = |beta: f64| {
        let mut p = SequentialProcess::new(ProcessConfig::new(queues).with_beta(beta).with_seed(8));
        let (_, series) = p.run_alternating_with_series(80_000, 16_000, 20_000);
        let first = series.points.first().unwrap().1;
        let last = series.points.last().unwrap().1;
        (first, last)
    };
    let (single_first, single_last) = run(0.0);
    let (double_first, double_last) = run(1.0);
    assert!(
        single_last > single_first,
        "single choice should degrade over time ({single_first} -> {single_last})"
    );
    assert!(
        double_last < double_first * 2.0 + 2.0 * queues as f64,
        "two choice should stay flat ({double_first} -> {double_last})"
    );
}

/// The potential-function machinery (Theorem 3) and the rank behaviour line
/// up: bounded potential for two-choice, growing potential for single-choice.
#[test]
fn potential_bound_tracks_rank_behaviour() {
    use power_of_choice::process::potential::{PotentialParams, PotentialSnapshot};
    let n = 24;
    let params = PotentialParams::from_beta_gamma(1.0, 0.0);
    let mut two = ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(1.0).with_seed(4));
    let mut one = ExponentialTopProcess::new(ProcessConfig::new(n).with_beta(0.0).with_seed(4));
    two.run(150_000);
    one.run(150_000);
    let gamma_two = PotentialSnapshot::compute(&two.deviations(), params.alpha).gamma_per_bin;
    let gamma_one = PotentialSnapshot::compute(&one.deviations(), params.alpha).gamma_per_bin;
    assert!(
        gamma_two < 10.0,
        "two-choice Gamma/n = {gamma_two} should be O(1)"
    );
    assert!(
        gamma_one > gamma_two,
        "single-choice potential {gamma_one} should exceed two-choice {gamma_two}"
    );
}
