//! Integration tests for the handle-based session API itself: deterministic
//! replay, buffer flushing on drop, policy equivalence with the former
//! wrapper types, and cross-handle conservation.

use std::collections::HashSet;

use power_of_choice::prelude::*;

fn queue(queues: usize, beta: f64, seed: u64) -> MultiQueue<u64> {
    MultiQueue::new(
        MultiQueueConfig::with_queues(queues)
            .with_beta(beta)
            .with_seed(seed),
    )
}

/// Same seed + same registration order ⇒ the same handle ids, the same RNG
/// streams, and therefore the same removal sequence single-threaded. This is
/// the reproducibility contract that replaced the process-wide
/// `thread_local!` RNG (which made runs depend on which OS threads had
/// touched a queue before).
#[test]
fn deterministic_replay_across_identical_queues() {
    let runs: Vec<Vec<(u64, u64)>> = (0..2)
        .map(|_| {
            let q = queue(8, 0.75, 12345);
            let mut first = q.register();
            let mut second = q.register();
            for k in 0..2_000u64 {
                if k % 2 == 0 {
                    first.insert(k, k);
                } else {
                    second.insert(k, k);
                }
            }
            let mut removals = Vec::new();
            // Alternate sessions so both RNG streams are exercised.
            while let Some(kv) = first.delete_min() {
                removals.push(kv);
                if let Some(kv) = second.delete_min() {
                    removals.push(kv);
                }
            }
            removals
        })
        .collect();
    assert_eq!(runs[0].len(), 2_000);
    assert_eq!(runs[0], runs[1], "replay with identical seeds must match");
}

/// Different seeds give different removal orders (the streams really are
/// seed-derived, not fixed).
#[test]
fn different_seeds_give_different_orders() {
    let order = |seed: u64| {
        let q = queue(8, 1.0, seed);
        let mut h = q.register();
        for k in 0..2_000u64 {
            h.insert(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        out
    };
    assert_ne!(order(1), order(2));
}

/// Dropping a handle flushes its private insert buffer — no elements are
/// lost even when the session ends mid-batch.
#[test]
fn handle_drop_flushes_its_batch_buffer() {
    let q = queue(4, 1.0, 9);
    {
        let mut h = q.register_with(HandlePolicy::default().with_insert_batch(64));
        for k in 0..37u64 {
            h.insert(k, k);
        }
        // 37 < 64: nothing published yet.
        assert_eq!(q.approx_len(), 0);
    } // h dropped here
    assert_eq!(q.approx_len(), 37, "drop must publish the buffered inserts");
    let mut drainer = q.register();
    let mut got = HashSet::new();
    while let Some((k, _)) = drainer.delete_min() {
        got.insert(k);
    }
    assert_eq!(got.len(), 37);
}

/// Two handles on one queue never lose or duplicate elements under a
/// concurrent stress test mixing policies (batched vs. plain).
#[test]
fn two_handles_conserve_elements_under_concurrent_stress() {
    let q = queue(8, 0.5, 77);
    let per = 20_000u64;
    let removed: Vec<u64> = std::thread::scope(|scope| {
        let a = scope.spawn(|| {
            let mut h = q.register_with(HandlePolicy::default().with_insert_batch(32));
            let mut got = Vec::new();
            for i in 0..per {
                h.insert(i, i);
                if i % 2 == 1 {
                    if let Some((k, _)) = h.delete_min() {
                        got.push(k);
                    }
                }
            }
            got
        });
        let b = scope.spawn(|| {
            let mut h = q.register();
            let mut got = Vec::new();
            for i in per..2 * per {
                h.insert(i, i);
                if i % 2 == 0 {
                    if let Some((k, _)) = h.delete_min() {
                        got.push(k);
                    }
                }
            }
            got
        });
        let mut all = a.join().unwrap();
        all.extend(b.join().unwrap());
        all
    });
    let mut seen: HashSet<u64> = HashSet::new();
    for k in removed {
        assert!(seen.insert(k), "key {k} popped twice during stress");
    }
    let mut drainer = q.register();
    while let Some((k, _)) = drainer.delete_min() {
        assert!(seen.insert(k), "key {k} popped twice during drain");
    }
    assert_eq!(seen.len() as u64, 2 * per, "keys lost");
    assert!(q.is_empty());
}

/// Equivalence with the former `InstrumentedHandle`: instrumented sessions
/// produce one uniquely-timestamped log entry per successful removal, and
/// the merged logs reproduce the Section 5 rank statistics.
#[test]
fn instrumented_policy_reproduces_instrumented_handle_behaviour() {
    let q = queue(8, 1.0, 4);
    let threads = 4usize;
    let per = 5_000u64;
    {
        let mut loader = q.register();
        for k in 0..50_000u64 {
            loader.insert(k, k);
        }
    }
    let logs: Vec<_> = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads {
            let q = &q;
            workers.push(scope.spawn(move || {
                let mut h = q.register_with(HandlePolicy::instrumented());
                for i in 0..per {
                    h.insert(50_000 + t as u64 * per + i, 0);
                    h.delete_min();
                }
                h.take_log()
            }));
        }
        workers.into_iter().map(|w| w.join().unwrap()).collect()
    });
    // One entry per successful removal, globally unique timestamps.
    let total: usize = logs.iter().map(|l| l.len()).sum();
    assert_eq!(total as u64, threads as u64 * per);
    let mut stamps: Vec<u64> = logs.iter().flatten().map(|r| r.timestamp).collect();
    stamps.sort_unstable();
    stamps.dedup();
    assert_eq!(stamps.len(), total, "timestamps must be globally unique");
    // And the merged logs drive the inversion counter exactly as before.
    let mut counter = InversionCounter::new();
    for log in logs {
        counter.record_all(log);
    }
    let summary = counter.summarize();
    assert_eq!(summary.removals, total as u64);
    assert!(summary.mean_rank >= 1.0);
}

/// Equivalence with the former `StickyHandle`: a sticky policy keeps
/// reusing one lane between refreshes (observable through lane lengths in an
/// uncontended run) and, like the old wrapper, never affects conservation.
#[test]
fn sticky_policy_reproduces_sticky_handle_behaviour() {
    let q = queue(8, 1.0, 21);
    let mut h = q.register_with(HandlePolicy::default().with_sticky_ops(50));
    for k in 0..50u64 {
        h.insert(k, k);
    }
    // One choice amortised over the 50 inserts ⇒ exactly one non-empty lane.
    let lengths = q.lane_lengths();
    assert_eq!(lengths.iter().sum::<usize>(), 50);
    assert_eq!(lengths.iter().filter(|&&l| l > 0).count(), 1);
    // Conservation holds exactly as with the old wrapper.
    let mut out = Vec::new();
    while let Some((k, _)) = h.delete_min() {
        out.push(k);
    }
    out.sort_unstable();
    assert_eq!(out, (0..50u64).collect::<Vec<_>>());
}

/// Handle statistics count the session's own operations, not the queue's.
#[test]
fn handle_stats_are_per_session() {
    let q = queue(4, 1.0, 2);
    let mut a = q.register();
    let mut b = q.register();
    for k in 0..10u64 {
        a.insert(k, k);
    }
    for _ in 0..4 {
        b.delete_min();
    }
    b.delete_min(); // 5 removals via b
    assert_eq!(a.stats().inserts, 10);
    assert_eq!(a.stats().removals, 0);
    assert_eq!(b.stats().inserts, 0);
    assert_eq!(b.stats().removals, 5);
    assert_eq!(b.stats().failed_removals, 0);
}

/// Per-session counters fold into queue-wide totals with
/// `HandleStats::merge` — the aggregation the service's Stats op and the
/// scheduler report are built on.
#[test]
fn stats_merge_across_sessions_accounts_every_operation() {
    let q = queue(4, 1.0, 6);
    let mut a = q.register();
    let mut b = q.register();
    for k in 0..10u64 {
        a.insert(k, k);
    }
    let mut popped = 0;
    while b.delete_min().is_some() {
        popped += 1;
    }
    assert_eq!(popped, 10);
    let mut total = HandleStats::default();
    total.merge(&a.stats());
    total.merge(&b.stats());
    assert_eq!(total.inserts, 10);
    assert_eq!(total.removals, 10);
    assert_eq!(total.failed_removals, 1, "b's final empty poll");
    assert_eq!(
        total.operations(),
        a.stats().operations() + b.stats().operations()
    );
}
