//! Model-checks the scheduler's count-based quiescence termination
//! (DESIGN.md §5.1, `choice_sched::scheduler`'s module docs).
//!
//! The model mirrors the protocol's seam exactly: a `pending` counter of
//! tasks injected-or-spawned but not fully executed, a `sources` counter of
//! open injectors, and the worker's termination check — empty poll, then
//! `sources == 0`, then `pending == 0`, read in that order. The invariants
//! checked under explored schedules:
//!
//! * **no early termination** — a worker that passes the check never leaves
//!   spawned-but-unexecuted work behind (`executed == total`, queue empty);
//! * **no counter underflow** — `pending` releases always match a prior
//!   increment (an underflow means some task ran while uncounted, which is
//!   exactly the state that lets the detector fire with work in flight).
//!
//! Broken variants seeded deliberately, each failing with a replayable
//! schedule: releasing the parent's `pending` unit *before* pushing its
//! spawn (counter decrement before push), and inserting a task *before*
//! counting it (insert before increment on the injector path).
//!
//! Liveness ("never hang on empty-pop races") is covered structurally: the
//! explorer reports a deadlock if no virtual thread can run, and workers
//! here poll with a bounded budget, so a hung detector would surface as
//! budget exhaustion in every schedule rather than termination — the
//! faithful model's explored runs do terminate (see the executed-count
//! assertions), while unfair schedules that starve a worker are legal and
//! simply end its budget.

use std::sync::Arc;

use check::sync::{AtomicU64, Mutex, Ordering};
use choice_check as check;

/// Which protocol steps the model performs faithfully.
#[derive(Clone, Copy)]
struct Variant {
    /// Increment `pending` before inserting the task (the real injector).
    /// `false` is the insert-before-count bug.
    count_before_insert: bool,
    /// Release the parent's `pending` unit only after its spawns are
    /// counted and pushed (the real worker). `true` is the
    /// decrement-before-push bug.
    release_parent_before_spawn: bool,
}

const FAITHFUL: Variant = Variant {
    count_before_insert: true,
    release_parent_before_spawn: false,
};

/// The scheduler seam: task bag + quiescence counters. A task's payload is
/// how many children it spawns when executed.
struct Sched {
    queue: Mutex<Vec<u64>>,
    pending: AtomicU64,
    sources: AtomicU64,
    executed: AtomicU64,
    /// Tasks that will ever exist (injected + spawned), known statically.
    total: u64,
}

impl Sched {
    fn new(total: u64) -> Self {
        Self {
            queue: Mutex::new(Vec::new()),
            pending: AtomicU64::new(0),
            sources: AtomicU64::new(1), // one open injector
            executed: AtomicU64::new(0),
            total,
        }
    }
}

/// The injector: one parent task that spawns one child, then close the
/// source (mirrors `Injector::inject` + `Drop`).
fn injector(s: &Sched, variant: Variant) {
    if variant.count_before_insert {
        s.pending.fetch_add(1, Ordering::SeqCst);
        s.queue.lock().push(1);
    } else {
        s.queue.lock().push(1);
        s.pending.fetch_add(1, Ordering::SeqCst);
    }
    s.sources.fetch_sub(1, Ordering::SeqCst);
}

/// Releases one `pending` unit, asserting it matches a prior increment.
fn release_pending(s: &Sched) {
    let prev = s.pending.fetch_sub(1, Ordering::SeqCst);
    assert!(prev > 0, "pending underflow: a task ran while uncounted");
}

/// One worker: poll, execute (spawning children), release the parent unit;
/// on an empty poll consult the termination detector. `budget` bounds the
/// empty polls so every schedule is finite.
fn worker(s: &Sched, variant: Variant, budget: u32) {
    let mut polls = 0;
    while polls < budget {
        let task = s.queue.lock().pop();
        match task {
            Some(children) => {
                s.executed.fetch_add(1, Ordering::SeqCst);
                if variant.release_parent_before_spawn {
                    release_pending(s);
                }
                for _ in 0..children {
                    s.pending.fetch_add(1, Ordering::SeqCst);
                    s.queue.lock().push(0);
                }
                if !variant.release_parent_before_spawn {
                    release_pending(s);
                }
            }
            None => {
                polls += 1;
                // The detector: sources, then pending, SeqCst, in order.
                if s.sources.load(Ordering::SeqCst) == 0 && s.pending.load(Ordering::SeqCst) == 0 {
                    assert_eq!(
                        s.executed.load(Ordering::SeqCst),
                        s.total,
                        "terminated with work in flight"
                    );
                    assert!(s.queue.lock().is_empty(), "terminated with queued tasks");
                    return;
                }
                check::spin();
            }
        }
    }
}

/// One injector (1 parent → 1 child, so `total = 2`) racing two workers.
fn quiescence_model(variant: Variant) {
    let s = Arc::new(Sched::new(2));
    let si = Arc::clone(&s);
    let inj = check::spawn(move || injector(&si, variant));
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let sw = Arc::clone(&s);
            check::spawn(move || worker(&sw, variant, 2))
        })
        .collect();
    inj.join();
    for w in workers {
        w.join();
    }
    // Whatever the schedule, no task is executed twice and none vanishes
    // from the bag without being counted as executed.
    let executed = s.executed.load(Ordering::SeqCst);
    let queued = s.queue.lock().len() as u64;
    assert!(
        executed + queued <= s.total,
        "tasks duplicated: executed {executed} + queued {queued} > total {}",
        s.total
    );
}

#[test]
fn faithful_protocol_survives_preemption_bounded_dfs() {
    let budget = check::schedule_budget(4_000);
    let report = check::explore(
        check::Config {
            preemption_bound: Some(2),
            ..check::Config::dfs(budget)
        },
        || quiescence_model(FAITHFUL),
    )
    .expect("the counted protocol never terminates with work in flight");
    assert!(report.schedules > 100, "exploration actually branched");
}

#[test]
fn faithful_protocol_survives_random_schedules() {
    let budget = check::schedule_budget(800);
    check::explore(check::Config::random(budget, 0x9E3779B9), || {
        quiescence_model(FAITHFUL)
    })
    .map(|report| assert_eq!(report.schedules, budget))
    .expect("no random schedule violates quiescence");
}

#[test]
fn releasing_the_parent_before_its_spawn_terminates_early() {
    let variant = Variant {
        release_parent_before_spawn: true,
        ..FAITHFUL
    };
    let failure = check::explore(
        check::Config {
            preemption_bound: Some(2),
            ..check::Config::dfs(30_000)
        },
        move || quiescence_model(variant),
    )
    .expect_err("decrement-before-push lets the detector fire with a spawn in flight");
    assert!(
        failure.message.contains("terminated with work in flight")
            || failure.message.contains("pending underflow"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || quiescence_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
}

#[test]
fn inserting_before_counting_underflows_the_counter() {
    let variant = Variant {
        count_before_insert: false,
        ..FAITHFUL
    };
    let failure = check::explore(
        check::Config {
            preemption_bound: Some(2),
            ..check::Config::dfs(30_000)
        },
        move || quiescence_model(variant),
    )
    .expect_err("insert-before-count lets a task run while uncounted");
    assert!(
        failure.message.contains("pending underflow")
            || failure.message.contains("terminated with work in flight"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || quiescence_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
}
