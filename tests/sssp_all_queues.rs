//! Integration tests: parallel SSSP returns exact distances with *every*
//! queue implementation in the workspace, on several graph families, at
//! several thread counts — the correctness backbone behind Figure 3.
//!
//! Queues are handed around type-erased (`Arc<dyn DynSharedPq<u32>>`), the
//! same shape the benchmark harness uses; each SSSP worker registers its own
//! session handle internally.

use std::sync::Arc;

use power_of_choice::graph::{bellman_ford, random_graph};
use power_of_choice::prelude::*;

fn queues_for(threads: usize) -> Vec<(&'static str, Arc<dyn DynSharedPq<u32>>)> {
    vec![
        (
            "multiqueue beta=1.0",
            Arc::new(MultiQueue::new(
                MultiQueueConfig::for_threads(threads).with_beta(1.0),
            )),
        ),
        (
            "multiqueue beta=0.5",
            Arc::new(MultiQueue::new(
                MultiQueueConfig::for_threads(threads).with_beta(0.5),
            )),
        ),
        (
            "multiqueue beta=0.0",
            Arc::new(MultiQueue::new(
                MultiQueueConfig::for_threads(threads).with_beta(0.0),
            )),
        ),
        ("coarse heap", Arc::new(CoarseHeap::new())),
        ("skiplist queue", Arc::new(SkipListQueue::new())),
        (
            "klsm k=64",
            Arc::new(KLsmQueue::new(
                KLsmConfig::for_threads(threads).with_relaxation(64),
            )),
        ),
    ]
}

#[test]
fn grid_graph_all_queues_all_thread_counts() {
    let graph = grid_graph(40, 40, 50, 11);
    let expected = dijkstra(&graph, 0);
    for threads in [1usize, 2, 4] {
        for (name, queue) in queues_for(threads) {
            let (got, stats) = parallel_sssp(&graph, 0, &*queue, threads);
            assert_eq!(got, expected, "{name} with {threads} threads diverged");
            assert!(stats.useful_pops as usize >= graph.nodes() / 2);
        }
    }
}

#[test]
fn road_like_geometric_graph() {
    let graph = random_geometric_graph(3_000, 0.03, 100, 5);
    let expected = dijkstra(&graph, 0);
    for (name, queue) in queues_for(2) {
        let (got, _) = parallel_sssp(&graph, 0, &*queue, 2);
        assert_eq!(got, expected, "{name} diverged on the geometric graph");
    }
}

#[test]
fn dense_random_graph_cross_checked_with_bellman_ford() {
    let graph = random_graph(300, 6_000, 40, 17);
    let reference = bellman_ford(&graph, 0);
    assert_eq!(dijkstra(&graph, 0), reference);
    let queue = MultiQueue::<u32>::new(MultiQueueConfig::for_threads(4).with_beta(0.75));
    let (got, _) = parallel_sssp(&graph, 0, &queue, 4);
    assert_eq!(got, reference);
}

#[test]
fn disconnected_graph_components_are_unreachable_for_every_queue() {
    // Two disjoint 10x10 grids glued into one node set.
    let mut edges = Vec::new();
    let base = grid_graph(10, 10, 9, 3);
    for u in 0..base.nodes() as u32 {
        for (v, w) in base.neighbors(u) {
            edges.push((u, v, w));
            edges.push((u + 100, v + 100, w));
        }
    }
    let graph = Graph::from_edges(200, &edges);
    let expected = dijkstra(&graph, 0);
    assert!(expected[100..].iter().all(|&d| d == u64::MAX));
    for (name, queue) in queues_for(2) {
        let (got, _) = parallel_sssp(&graph, 0, &*queue, 2);
        assert_eq!(got, expected, "{name} diverged on the disconnected graph");
    }
}
