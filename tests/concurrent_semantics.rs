//! Integration tests: set semantics of every concurrent queue under
//! multi-threaded stress, including the stalled-thread failure injection from
//! Appendix C — elements are never lost, duplicated or invented. All access
//! goes through registered session handles.

use std::collections::HashSet;

use power_of_choice::prelude::*;

/// Runs `threads` workers that each register a session, insert a disjoint
/// block of keys and pop roughly half of them while running; then drains the
/// queue and checks that exactly the inserted key set comes back.
fn stress_conservation<Q: SharedPq<u64> + ?Sized>(queue: &Q, threads: usize, per: u64) {
    let removed: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut session = queue.register();
                let base = t as u64 * per;
                let mut got = Vec::new();
                for i in 0..per {
                    session.insert(base + i, base + i);
                    if i % 2 == 1 {
                        if let Some((k, v)) = session.delete_min() {
                            assert_eq!(k, v, "value must travel with its key");
                            got.push(k);
                        }
                    }
                }
                got
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = HashSet::new();
    for k in removed {
        assert!(
            seen.insert(k),
            "key {k} popped twice during the stress phase"
        );
    }
    let mut drainer = queue.register();
    while let Some((k, _)) = drainer.delete_min() {
        assert!(
            seen.insert(k),
            "key {k} popped twice during the drain phase"
        );
    }
    assert_eq!(seen.len() as u64, threads as u64 * per, "keys lost");
    assert!(queue.is_empty());
}

#[test]
fn multiqueue_conserves_elements_under_stress() {
    for beta in [1.0, 0.5, 0.0] {
        let q = MultiQueue::new(MultiQueueConfig::for_threads(4).with_beta(beta));
        stress_conservation(&q, 4, 5_000);
    }
}

#[test]
fn multiqueue_with_sticky_and_batched_policies_conserves_elements() {
    // The handle policies move elements through private buffers and sticky
    // lanes; conservation must be unaffected.
    let q = MultiQueue::new(MultiQueueConfig::for_threads(4).with_beta(0.75));
    let per = 5_000u64;
    let threads = 4usize;
    let policies = [
        HandlePolicy::default().with_sticky_ops(8),
        HandlePolicy::default().with_insert_batch(32),
        HandlePolicy::default()
            .with_sticky_ops(4)
            .with_insert_batch(16),
        HandlePolicy::default(),
    ];
    let removed: Vec<u64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, policy) in policies.iter().enumerate().take(threads) {
            let q = &q;
            handles.push(scope.spawn(move || {
                let mut session = q.register_with(*policy);
                let base = t as u64 * per;
                let mut got = Vec::new();
                for i in 0..per {
                    session.insert(base + i, base + i);
                    if i % 2 == 1 {
                        if let Some((k, _)) = session.delete_min() {
                            got.push(k);
                        }
                    }
                }
                got
                // Dropping the session flushes any remaining buffered inserts.
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut seen: HashSet<u64> = removed.into_iter().collect();
    let mut drainer = q.register();
    while let Some((k, _)) = drainer.delete_min() {
        assert!(seen.insert(k), "duplicate key {k}");
    }
    assert_eq!(seen.len() as u64, threads as u64 * per);
}

#[test]
fn baselines_conserve_elements_under_stress() {
    stress_conservation(&CoarseHeap::new(), 4, 5_000);
    stress_conservation(&SkipListQueue::new(), 4, 5_000);
    stress_conservation(
        &KLsmQueue::new(KLsmConfig::for_threads(4).with_relaxation(128)),
        4,
        5_000,
    );
}

#[test]
fn type_erased_queues_conserve_elements_under_stress() {
    use std::sync::Arc;
    let q: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::new(
        MultiQueueConfig::for_threads(4).with_beta(0.5),
    ));
    stress_conservation(&*q, 4, 2_000);
}

/// Appendix C failure injection: while one lane's lock is held hostage, other
/// threads keep operating; afterwards the structure still holds exactly the
/// right multiset of keys.
#[test]
fn multiqueue_survives_a_hostage_lane() {
    let queue = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(6)
            .with_beta(0.75)
            .with_seed(5),
    );
    {
        let mut loader = queue.register();
        for k in 0..10_000u64 {
            loader.insert(k, k);
        }
    }
    let popped_during_stall = {
        let queue_ref = &queue;
        queue.with_lane_locked(2, move || {
            let popped: Vec<u64> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..3 {
                    handles.push(scope.spawn(move || {
                        let mut session = queue_ref.register();
                        let mut got = Vec::new();
                        for i in 0..2_000u64 {
                            session.insert(10_000 + t as u64 * 2_000 + i, 0);
                            if let Some((k, _)) = session.delete_min() {
                                got.push(k);
                            }
                        }
                        got
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().unwrap())
                    .collect()
            });
            popped
        })
    };
    assert!(
        popped_during_stall.len() > 1_000,
        "operations must keep completing while a lane is held"
    );
    let mut seen: HashSet<u64> = HashSet::new();
    for k in popped_during_stall {
        assert!(seen.insert(k), "duplicate {k} during stall");
    }
    let mut drainer = queue.register();
    while let Some((k, _)) = drainer.delete_min() {
        assert!(seen.insert(k), "duplicate {k} during drain");
    }
    assert_eq!(seen.len(), 10_000 + 3 * 2_000);
}

/// The relaxed queues must still be *exact* when used by a single session
/// with one lane / one slot — a sanity anchor for the relaxation semantics.
#[test]
fn degenerate_configurations_are_exact() {
    let mq = MultiQueue::<u64>::new(MultiQueueConfig::with_queues(1));
    let klsm = KLsmQueue::<u64>::new(KLsmConfig::for_threads(1).with_relaxation(4));
    for q in [&mq as &dyn DynSharedPq<u64>, &klsm] {
        let mut session = q.register();
        for k in [5u64, 3, 8, 1, 9, 2] {
            session.insert(k, k);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = session.delete_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 2, 3, 5, 8, 9]);
    }
}
