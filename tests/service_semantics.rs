//! Integration tests for the choice-wire service: exactly-once delivery and
//! key conservation over loopback TCP, across concurrent clients, on every
//! backend the paper compares.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use power_of_choice::prelude::*;
use power_of_choice::service::{ClientError, ErrorCode, Request, Response};

/// The four backends behind the service, type-erased exactly as the bench
/// harness builds them.
fn backends(clients: usize, seed: u64) -> Vec<(&'static str, Arc<dyn DynSharedPq<u64>>)> {
    vec![
        (
            "multiqueue",
            Arc::new(MultiQueue::new(
                MultiQueueConfig::for_threads(clients)
                    .with_beta(0.75)
                    .with_seed(seed),
            )),
        ),
        ("coarse-heap", Arc::new(CoarseHeap::new())),
        (
            "klsm",
            Arc::new(KLsmQueue::new(
                KLsmConfig::for_threads(clients).with_relaxation(256),
            )),
        ),
        ("skiplist", Arc::new(SkipListQueue::with_seed(seed))),
    ]
}

/// Four concurrent clients insert disjoint key ranges and then drain the
/// queue through batched removals. Every key must come back exactly once
/// across all clients (no loss, no duplication), on every backend.
#[test]
fn exactly_once_and_key_conservation_across_four_clients() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 2_000;
    const TOTAL: u64 = CLIENTS as u64 * PER_CLIENT;

    for (name, queue) in backends(CLIENTS, 7) {
        let server = PqServer::spawn(Arc::clone(&queue), "127.0.0.1:0", ServerConfig::default())
            .expect("bind ephemeral port");
        let addr = server.local_addr();
        let inserted_barrier = Barrier::new(CLIENTS);
        let collected = AtomicU64::new(0);

        let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..CLIENTS as u64)
                .map(|c| {
                    let inserted_barrier = &inserted_barrier;
                    let collected = &collected;
                    scope.spawn(move || {
                        let mut client = PqClient::connect_with_window(addr, 32).expect("connect");
                        // Insert this client's disjoint range, pipelined.
                        for key in (c * PER_CLIENT)..((c + 1) * PER_CLIENT) {
                            if let Some((response, _)) = client
                                .submit(&Request::Insert {
                                    key,
                                    value: key ^ 0xA5A5,
                                })
                                .expect("pipelined insert")
                            {
                                assert_eq!(response, Response::Inserted, "{name}");
                            }
                        }
                        client
                            .drain_all(|(response, _)| {
                                assert_eq!(response, Response::Inserted, "{name}")
                            })
                            .expect("insert acks");
                        // All inserts acknowledged (and the default policy
                        // buffers nothing), so once every client reaches
                        // this point the queue holds exactly TOTAL entries.
                        inserted_barrier.wait();

                        // Drain cooperatively until the fleet has seen every
                        // entry. A batch may come back empty transiently
                        // (relaxed emptiness is best-effort); only the
                        // shared count terminates.
                        let mut mine = Vec::new();
                        while collected.load(Ordering::SeqCst) < TOTAL {
                            let entries = client.delete_min_batch(32).expect("batched removal");
                            if entries.is_empty() {
                                std::thread::yield_now();
                                continue;
                            }
                            collected.fetch_add(entries.len() as u64, Ordering::SeqCst);
                            for (key, value) in entries {
                                assert_eq!(value, key ^ 0xA5A5, "{name}: payload mangled");
                                mine.push(key);
                            }
                        }
                        mine
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });

        let mut all: Vec<u64> = popped.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..TOTAL).collect::<Vec<u64>>(),
            "{name}: every key exactly once"
        );

        // The server saw it all: 4 sessions, TOTAL inserts, TOTAL removals.
        let stats = server.join();
        assert_eq!(stats.sessions, CLIENTS as u64, "{name}");
        assert_eq!(stats.totals.inserts, TOTAL, "{name}");
        assert_eq!(stats.totals.removals, TOTAL, "{name}");
        assert!(queue.is_empty_dyn(), "{name}: nothing strands in the queue");
    }
}

/// The quiescent element count is visible over the wire, and the Stats op
/// aggregates every session's counters (the `HandleStats::merge` path).
#[test]
fn approx_len_and_stats_aggregate_across_sessions() {
    let queue: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::new(
        MultiQueueConfig::for_threads(2).with_seed(11),
    ));
    let server =
        PqServer::spawn(Arc::clone(&queue), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut a = PqClient::connect(server.local_addr()).unwrap();
    let mut b = PqClient::connect(server.local_addr()).unwrap();
    for key in 0..100u64 {
        a.insert(key, key).unwrap();
    }
    for _ in 0..40 {
        assert!(b.delete_min().unwrap().is_some());
    }
    assert_eq!(a.approx_len().unwrap(), 60);
    // Either session observes the merged totals.
    for client in [&mut a, &mut b] {
        let stats = client.stats().unwrap();
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.totals.inserts, 100);
        assert_eq!(stats.totals.removals, 40);
    }
    b.shutdown_server().unwrap();
    let final_stats = server.join();
    // Only queue operations count: ApproxLen / Stats / Shutdown are service
    // ops, not session ops.
    assert_eq!(final_stats.totals.operations(), 140);
}

/// Remote refusals and protocol violations surface as typed errors without
/// disturbing other sessions.
#[test]
fn refusals_are_per_session_not_per_server() {
    let queue: Arc<dyn DynSharedPq<u64>> = Arc::new(MultiQueue::new(
        MultiQueueConfig::for_threads(2).with_seed(3),
    ));
    let server =
        PqServer::spawn(Arc::clone(&queue), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut good = PqClient::connect(server.local_addr()).unwrap();
    let mut bad = PqClient::connect(server.local_addr()).unwrap();
    match bad.insert(u64::MAX, 0) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::ReservedKey),
        other => panic!("expected the reserved-key refusal, got {other:?}"),
    }
    // The well-behaved session is untouched, and the refused session itself
    // stays usable (only framing errors close a connection).
    good.insert(1, 10).unwrap();
    bad.insert(2, 20).unwrap();
    assert_eq!(good.approx_len().unwrap(), 2);
}
