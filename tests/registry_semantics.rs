//! Integration tests for the choice-registry layer behind the service:
//! exactly-once delivery and key conservation across concurrent clients
//! spread over many named queues, on every backend the paper compares, and
//! typed (never panicking) refusals when a queue is dropped mid-drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use power_of_choice::prelude::*;
use power_of_choice::service::{ClientError, ErrorCode, PqServer, Request, Response};

const QUEUES: u64 = 8;
const CLIENTS: usize = 4;
const PER_CLIENT: u64 = 150;
const PER_QUEUE: u64 = CLIENTS as u64 * PER_CLIENT;
const TOTAL: u64 = QUEUES * PER_QUEUE;

/// Keys carry their home queue in the high half, so any cross-queue leak is
/// immediately attributable.
fn key_for(queue: u64, n: u64) -> u64 {
    (queue << 32) | n
}

fn queue_name(queue: u64) -> String {
    format!("tenant/{queue}")
}

/// The backend specs the registry builds lazily, matching the four backends
/// of `tests/service_semantics.rs`.
fn backend_specs() -> Vec<(&'static str, BackendSpec)> {
    vec![
        ("multiqueue", BackendSpec::MultiQueue { lanes: 8, d: 2 }),
        ("coarse-heap", BackendSpec::CoarseHeap),
        (
            "klsm",
            BackendSpec::KLsm {
                threads: CLIENTS as u32,
                relaxation: 256,
            },
        ),
        ("skiplist", BackendSpec::SkipList),
    ]
}

/// Four concurrent clients insert disjoint key ranges into eight named
/// queues and then drain them all through batched removals. Every key must
/// come back exactly once, from the queue it was inserted into, on every
/// backend.
#[test]
fn exactly_once_and_key_conservation_across_named_queues() {
    for (name, spec) in backend_specs() {
        let registry = Arc::new(QueueRegistry::default());
        for q in 0..QUEUES {
            registry
                .create(&queue_name(q), spec, QuotaSpec::unlimited())
                .expect("fresh registry accepts eight queues");
        }
        let server = PqServer::spawn_registry(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let inserted_barrier = Barrier::new(CLIENTS);
        let collected: Vec<AtomicU64> = (0..QUEUES).map(|_| AtomicU64::new(0)).collect();

        let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..CLIENTS as u64)
                .map(|c| {
                    let inserted_barrier = &inserted_barrier;
                    let collected = &collected;
                    scope.spawn(move || {
                        let mut client = PqClient::connect_with_window(addr, 32).expect("connect");
                        // Insert this client's disjoint slice of every queue,
                        // pipelined within each queue binding.
                        for q in 0..QUEUES {
                            client.use_queue(&queue_name(q)).expect("bind queue");
                            for n in (c * PER_CLIENT)..((c + 1) * PER_CLIENT) {
                                let key = key_for(q, n);
                                if let Some((response, _)) = client
                                    .submit(&Request::Insert {
                                        key,
                                        value: key ^ 0xC3C3,
                                    })
                                    .expect("pipelined insert")
                                {
                                    assert_eq!(response, Response::Inserted, "{name}");
                                }
                            }
                            client
                                .drain_all(|(response, _)| {
                                    assert_eq!(response, Response::Inserted, "{name}")
                                })
                                .expect("insert acks");
                        }
                        inserted_barrier.wait();

                        // Drain every queue cooperatively, starting from a
                        // client-specific offset so the fleet spreads out.
                        // Only the shared per-queue count terminates a queue
                        // (relaxed emptiness is best-effort).
                        let mut mine = Vec::new();
                        for step in 0..QUEUES {
                            let q = (c + step) % QUEUES;
                            client.use_queue(&queue_name(q)).expect("rebind queue");
                            while collected[q as usize].load(Ordering::SeqCst) < PER_QUEUE {
                                let entries = client.delete_min_batch(32).expect("batched removal");
                                if entries.is_empty() {
                                    std::thread::yield_now();
                                    continue;
                                }
                                collected[q as usize]
                                    .fetch_add(entries.len() as u64, Ordering::SeqCst);
                                for (key, value) in entries {
                                    assert_eq!(
                                        key >> 32,
                                        q,
                                        "{name}: key {key:#x} leaked across queues"
                                    );
                                    assert_eq!(value, key ^ 0xC3C3, "{name}: payload mangled");
                                    mine.push(key);
                                }
                            }
                        }
                        mine
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });

        let mut all: Vec<u64> = popped.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..QUEUES)
            .flat_map(|q| (0..PER_QUEUE).map(move |n| key_for(q, n)))
            .collect();
        assert_eq!(all, expected, "{name}: every key exactly once");

        // The aggregate and the per-queue breakdown both conserve the counts.
        let stats = server.join();
        assert_eq!(stats.totals.inserts, TOTAL, "{name}");
        assert_eq!(stats.totals.removals, TOTAL, "{name}");
        assert_eq!(stats.totals.refusals, 0, "{name}: nothing was refused");
        assert_eq!(stats.queues.len(), QUEUES as usize, "{name}");
        for row in &stats.queues {
            assert_eq!(row.totals.inserts, PER_QUEUE, "{name}/{}", row.name);
            assert_eq!(row.totals.removals, PER_QUEUE, "{name}/{}", row.name);
            assert_eq!(row.approx_len, 0, "{name}/{}: nothing strands", row.name);
        }
    }
}

/// Dropping a queue midway through a drain surfaces as typed wire errors on
/// the bound session — `QueueDropped` for operations, `NoSuchQueue` for a
/// rebind — and conserves every key that was popped before the drop.
#[test]
fn drop_queue_mid_drain_returns_typed_errors_and_conserves_keys() {
    const KEYS: u64 = 600;
    const DRAINED: u64 = 300;

    let registry = Arc::new(QueueRegistry::default());
    registry
        .create("victim", BackendSpec::CoarseHeap, QuotaSpec::unlimited())
        .unwrap();
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();

    let mut a = PqClient::connect(server.local_addr()).unwrap();
    a.use_queue("victim").unwrap();
    for key in 0..KEYS {
        a.insert(key, key ^ 0x77).unwrap();
    }
    // Drain exactly half. The coarse heap is exact and this is the only
    // session, so the keys come back in order.
    for expected in 0..DRAINED {
        assert_eq!(a.delete_min().unwrap(), Some((expected, expected ^ 0x77)));
    }

    // A second connection drops the queue out from under the first.
    let mut b = PqClient::connect(server.local_addr()).unwrap();
    b.drop_queue("victim").unwrap();

    // Every further operation on the bound session is a typed refusal, the
    // connection stays open, and a rebind names the real condition.
    for _ in 0..3 {
        match a.delete_min() {
            Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QueueDropped),
            other => panic!("expected QueueDropped, got {other:?}"),
        }
    }
    match a.insert(9_999, 0) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QueueDropped),
        other => panic!("expected QueueDropped, got {other:?}"),
    }
    match a.use_queue("victim") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NoSuchQueue),
        other => panic!("expected NoSuchQueue, got {other:?}"),
    }

    // The name is free again: the session recovers by creating a successor.
    a.create_queue("victim", BackendSpec::SkipList, QuotaSpec::unlimited())
        .unwrap();
    a.use_queue("victim").unwrap();
    a.insert(1, 10).unwrap();
    assert_eq!(a.delete_min().unwrap(), Some((1, 10)));

    // The retired roll-up conserved the dropped queue's history: all KEYS
    // inserts and exactly DRAINED removals survive in the aggregate even
    // though the queue itself (and its remaining keys) are gone.
    let stats = server.join();
    assert_eq!(stats.totals.inserts, KEYS + 1);
    assert_eq!(stats.totals.removals, DRAINED + 1);
    assert_eq!(stats.totals.refusals, 4, "3 pops + 1 insert were refused");
    assert_eq!(stats.queues.len(), 1, "only the successor queue has a row");
}

/// A racing drop — concurrent drainers hammering a queue while another
/// connection drops it — never panics the server and never duplicates a
/// key. Drainers see only clean results or typed refusals.
#[test]
fn concurrent_drop_under_drain_never_panics_or_duplicates() {
    const KEYS: u64 = 2_000;
    const DROP_AFTER: u64 = 200;
    const DRAINERS: usize = 2;

    let registry = Arc::new(QueueRegistry::default());
    registry
        .create(
            "r",
            BackendSpec::MultiQueue { lanes: 4, d: 2 },
            QuotaSpec::unlimited(),
        )
        .unwrap();
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut feeder = PqClient::connect(addr).unwrap();
    feeder.use_queue("r").unwrap();
    for key in 0..KEYS {
        feeder.insert(key, key).unwrap();
    }

    let popped_count = AtomicU64::new(0);
    let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let dropper = {
            let popped_count = &popped_count;
            scope.spawn(move || {
                while popped_count.load(Ordering::SeqCst) < DROP_AFTER {
                    std::thread::yield_now();
                }
                let mut client = PqClient::connect(addr).unwrap();
                client.drop_queue("r").unwrap();
            })
        };
        let joins: Vec<_> = (0..DRAINERS)
            .map(|_| {
                let popped_count = &popped_count;
                scope.spawn(move || {
                    let mut client = PqClient::connect(addr).unwrap();
                    client.use_queue("r").unwrap();
                    let mut mine = Vec::new();
                    loop {
                        match client.delete_min_batch(16) {
                            Ok(entries) => {
                                // A transiently empty batch just yields:
                                // relaxed emptiness is best-effort, and the
                                // loop only ends on the typed refusal.
                                if entries.is_empty() {
                                    std::thread::yield_now();
                                    continue;
                                }
                                popped_count.fetch_add(entries.len() as u64, Ordering::SeqCst);
                                mine.extend(entries.into_iter().map(|(key, _)| key));
                            }
                            Err(ClientError::Remote { code, .. }) => {
                                assert_eq!(code, ErrorCode::QueueDropped);
                                break;
                            }
                            Err(other) => panic!("unexpected client error {other:?}"),
                        }
                    }
                    // After the typed refusal the connection is still good.
                    match client.use_queue("r") {
                        Err(ClientError::Remote { code, .. }) => {
                            assert_eq!(code, ErrorCode::NoSuchQueue)
                        }
                        other => panic!("expected NoSuchQueue, got {other:?}"),
                    }
                    mine
                })
            })
            .collect();
        dropper.join().unwrap();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let mut all: Vec<u64> = popped.into_iter().flatten().collect();
    let before = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), before, "no key was delivered twice");
    assert!(all.iter().all(|&k| k < KEYS), "no key was invented");

    // The server survived the race and still answers: every removal it
    // counted corresponds to a key some drainer actually received.
    let mut check = PqClient::connect(addr).unwrap();
    let stats = check.stats().unwrap();
    assert!(stats.totals.removals as usize <= before);
    drop(check);
    let _ = server.join();
}
