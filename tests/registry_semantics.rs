//! Integration tests for the choice-registry layer behind the service:
//! exactly-once delivery and key conservation across concurrent clients
//! spread over many named queues, on every backend the paper compares, and
//! typed (never panicking) refusals when a queue is dropped mid-drain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use power_of_choice::prelude::*;
use power_of_choice::service::{ClientError, ErrorCode, PqServer, Request, Response};

const QUEUES: u64 = 8;
const CLIENTS: usize = 4;
const PER_CLIENT: u64 = 150;
const PER_QUEUE: u64 = CLIENTS as u64 * PER_CLIENT;
const TOTAL: u64 = QUEUES * PER_QUEUE;

/// Keys carry their home queue in the high half, so any cross-queue leak is
/// immediately attributable.
fn key_for(queue: u64, n: u64) -> u64 {
    (queue << 32) | n
}

fn queue_name(queue: u64) -> String {
    format!("tenant/{queue}")
}

/// The backend specs the registry builds lazily, matching the four backends
/// of `tests/service_semantics.rs`.
fn backend_specs() -> Vec<(&'static str, BackendSpec)> {
    vec![
        ("multiqueue", BackendSpec::MultiQueue { lanes: 8, d: 2 }),
        ("coarse-heap", BackendSpec::CoarseHeap),
        (
            "klsm",
            BackendSpec::KLsm {
                threads: CLIENTS as u32,
                relaxation: 256,
            },
        ),
        ("skiplist", BackendSpec::SkipList),
    ]
}

/// Four concurrent clients insert disjoint key ranges into eight named
/// queues and then drain them all through batched removals. Every key must
/// come back exactly once, from the queue it was inserted into, on every
/// backend.
#[test]
fn exactly_once_and_key_conservation_across_named_queues() {
    for (name, spec) in backend_specs() {
        let registry = Arc::new(QueueRegistry::default());
        for q in 0..QUEUES {
            registry
                .create(&queue_name(q), spec, QuotaSpec::unlimited())
                .expect("fresh registry accepts eight queues");
        }
        let server = PqServer::spawn_registry(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig::default(),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();
        let inserted_barrier = Barrier::new(CLIENTS);
        let collected: Vec<AtomicU64> = (0..QUEUES).map(|_| AtomicU64::new(0)).collect();

        let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..CLIENTS as u64)
                .map(|c| {
                    let inserted_barrier = &inserted_barrier;
                    let collected = &collected;
                    scope.spawn(move || {
                        let mut client = PqClient::connect_with_window(addr, 32).expect("connect");
                        // Insert this client's disjoint slice of every queue,
                        // pipelined within each queue binding.
                        for q in 0..QUEUES {
                            client.use_queue(&queue_name(q)).expect("bind queue");
                            for n in (c * PER_CLIENT)..((c + 1) * PER_CLIENT) {
                                let key = key_for(q, n);
                                if let Some((response, _)) = client
                                    .submit(&Request::Insert {
                                        key,
                                        value: key ^ 0xC3C3,
                                    })
                                    .expect("pipelined insert")
                                {
                                    assert_eq!(response, Response::Inserted, "{name}");
                                }
                            }
                            client
                                .drain_all(|(response, _)| {
                                    assert_eq!(response, Response::Inserted, "{name}")
                                })
                                .expect("insert acks");
                        }
                        inserted_barrier.wait();

                        // Drain every queue cooperatively, starting from a
                        // client-specific offset so the fleet spreads out.
                        // Only the shared per-queue count terminates a queue
                        // (relaxed emptiness is best-effort).
                        let mut mine = Vec::new();
                        for step in 0..QUEUES {
                            let q = (c + step) % QUEUES;
                            client.use_queue(&queue_name(q)).expect("rebind queue");
                            while collected[q as usize].load(Ordering::SeqCst) < PER_QUEUE {
                                let entries = client.delete_min_batch(32).expect("batched removal");
                                if entries.is_empty() {
                                    std::thread::yield_now();
                                    continue;
                                }
                                collected[q as usize]
                                    .fetch_add(entries.len() as u64, Ordering::SeqCst);
                                for (key, value) in entries {
                                    assert_eq!(
                                        key >> 32,
                                        q,
                                        "{name}: key {key:#x} leaked across queues"
                                    );
                                    assert_eq!(value, key ^ 0xC3C3, "{name}: payload mangled");
                                    mine.push(key);
                                }
                            }
                        }
                        mine
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });

        let mut all: Vec<u64> = popped.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..QUEUES)
            .flat_map(|q| (0..PER_QUEUE).map(move |n| key_for(q, n)))
            .collect();
        assert_eq!(all, expected, "{name}: every key exactly once");

        // The aggregate and the per-queue breakdown both conserve the counts.
        let stats = server.join();
        assert_eq!(stats.totals.inserts, TOTAL, "{name}");
        assert_eq!(stats.totals.removals, TOTAL, "{name}");
        assert_eq!(stats.totals.refusals, 0, "{name}: nothing was refused");
        assert_eq!(stats.queues.len(), QUEUES as usize, "{name}");
        for row in &stats.queues {
            assert_eq!(row.totals.inserts, PER_QUEUE, "{name}/{}", row.name);
            assert_eq!(row.totals.removals, PER_QUEUE, "{name}/{}", row.name);
            assert_eq!(row.approx_len, 0, "{name}/{}: nothing strands", row.name);
        }
    }
}

/// Dropping a queue midway through a drain surfaces as typed wire errors on
/// the bound session — `QueueDropped` for operations, `NoSuchQueue` for a
/// rebind — and conserves every key that was popped before the drop.
#[test]
fn drop_queue_mid_drain_returns_typed_errors_and_conserves_keys() {
    const KEYS: u64 = 600;
    const DRAINED: u64 = 300;

    let registry = Arc::new(QueueRegistry::default());
    registry
        .create("victim", BackendSpec::CoarseHeap, QuotaSpec::unlimited())
        .unwrap();
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();

    let mut a = PqClient::connect(server.local_addr()).unwrap();
    a.use_queue("victim").unwrap();
    for key in 0..KEYS {
        a.insert(key, key ^ 0x77).unwrap();
    }
    // Drain exactly half. The coarse heap is exact and this is the only
    // session, so the keys come back in order.
    for expected in 0..DRAINED {
        assert_eq!(a.delete_min().unwrap(), Some((expected, expected ^ 0x77)));
    }

    // A second connection drops the queue out from under the first.
    let mut b = PqClient::connect(server.local_addr()).unwrap();
    b.drop_queue("victim").unwrap();

    // Every further operation on the bound session is a typed refusal, the
    // connection stays open, and a rebind names the real condition.
    for _ in 0..3 {
        match a.delete_min() {
            Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QueueDropped),
            other => panic!("expected QueueDropped, got {other:?}"),
        }
    }
    match a.insert(9_999, 0) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::QueueDropped),
        other => panic!("expected QueueDropped, got {other:?}"),
    }
    match a.use_queue("victim") {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::NoSuchQueue),
        other => panic!("expected NoSuchQueue, got {other:?}"),
    }

    // The name is free again: the session recovers by creating a successor.
    a.create_queue("victim", BackendSpec::SkipList, QuotaSpec::unlimited())
        .unwrap();
    a.use_queue("victim").unwrap();
    a.insert(1, 10).unwrap();
    assert_eq!(a.delete_min().unwrap(), Some((1, 10)));

    // The retired roll-up conserved the dropped queue's history: all KEYS
    // inserts and exactly DRAINED removals survive in the aggregate even
    // though the queue itself (and its remaining keys) are gone.
    let stats = server.join();
    assert_eq!(stats.totals.inserts, KEYS + 1);
    assert_eq!(stats.totals.removals, DRAINED + 1);
    assert_eq!(stats.totals.refusals, 4, "3 pops + 1 insert were refused");
    assert_eq!(stats.queues.len(), 1, "only the successor queue has a row");
}

/// A racing drop — concurrent drainers hammering a queue while another
/// connection drops it — never panics the server and never duplicates a
/// key. Drainers see only clean results or typed refusals.
#[test]
fn concurrent_drop_under_drain_never_panics_or_duplicates() {
    const KEYS: u64 = 2_000;
    const DROP_AFTER: u64 = 200;
    const DRAINERS: usize = 2;

    let registry = Arc::new(QueueRegistry::default());
    registry
        .create(
            "r",
            BackendSpec::MultiQueue { lanes: 4, d: 2 },
            QuotaSpec::unlimited(),
        )
        .unwrap();
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut feeder = PqClient::connect(addr).unwrap();
    feeder.use_queue("r").unwrap();
    for key in 0..KEYS {
        feeder.insert(key, key).unwrap();
    }

    let popped_count = AtomicU64::new(0);
    let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let dropper = {
            let popped_count = &popped_count;
            scope.spawn(move || {
                while popped_count.load(Ordering::SeqCst) < DROP_AFTER {
                    std::thread::yield_now();
                }
                let mut client = PqClient::connect(addr).unwrap();
                client.drop_queue("r").unwrap();
            })
        };
        let joins: Vec<_> = (0..DRAINERS)
            .map(|_| {
                let popped_count = &popped_count;
                scope.spawn(move || {
                    let mut client = PqClient::connect(addr).unwrap();
                    client.use_queue("r").unwrap();
                    let mut mine = Vec::new();
                    loop {
                        match client.delete_min_batch(16) {
                            Ok(entries) => {
                                // A transiently empty batch just yields:
                                // relaxed emptiness is best-effort, and the
                                // loop only ends on the typed refusal.
                                if entries.is_empty() {
                                    std::thread::yield_now();
                                    continue;
                                }
                                popped_count.fetch_add(entries.len() as u64, Ordering::SeqCst);
                                mine.extend(entries.into_iter().map(|(key, _)| key));
                            }
                            Err(ClientError::Remote { code, .. }) => {
                                assert_eq!(code, ErrorCode::QueueDropped);
                                break;
                            }
                            Err(other) => panic!("unexpected client error {other:?}"),
                        }
                    }
                    // After the typed refusal the connection is still good.
                    match client.use_queue("r") {
                        Err(ClientError::Remote { code, .. }) => {
                            assert_eq!(code, ErrorCode::NoSuchQueue)
                        }
                        other => panic!("expected NoSuchQueue, got {other:?}"),
                    }
                    mine
                })
            })
            .collect();
        dropper.join().unwrap();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let mut all: Vec<u64> = popped.into_iter().flatten().collect();
    let before = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), before, "no key was delivered twice");
    assert!(all.iter().all(|&k| k < KEYS), "no key was invented");

    // The server survived the race and still answers: every removal it
    // counted corresponds to a key some drainer actually received.
    let mut check = PqClient::connect(addr).unwrap();
    let stats = check.stats().unwrap();
    assert!(stats.totals.removals as usize <= before);
    drop(check);
    let _ = server.join();
}

/// Wire-level `Stats` raced against `DropQueue`/`CreateQueue` cycles: every
/// response decodes in full, stable queues' rows are always present and
/// exact, and the churning queue's row is either absent or complete —
/// never torn (a garbage name, an impossible counter, or a truncated row
/// would all fail the typed decode or the bounds below).
#[test]
fn stats_rows_under_concurrent_drop_are_absent_or_complete_never_torn() {
    const KEEP: usize = 3;
    const KEEP_KEYS: u64 = 100;
    const VICTIM_KEYS: u64 = 64;
    const CYCLES: u64 = 120;
    const READERS: usize = 2;

    let registry = Arc::new(QueueRegistry::default());
    let server = PqServer::spawn_registry(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();

    // Stable queues with known, never-changing histories: any torn encode
    // or misframed row scrambles at least one of these exact values.
    let keep_names: Vec<String> = (0..KEEP).map(|i| format!("keep/{i}")).collect();
    let mut seeder = PqClient::connect(addr).unwrap();
    for name in &keep_names {
        seeder
            .create_queue(name, BackendSpec::CoarseHeap, QuotaSpec::unlimited())
            .unwrap();
        seeder.use_queue(name).unwrap();
        for key in 0..KEEP_KEYS {
            seeder.insert(key, key).unwrap();
        }
    }
    drop(seeder);

    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let dropper = scope.spawn(|| {
            let mut client = PqClient::connect(addr).unwrap();
            for cycle in 0..CYCLES {
                client
                    .create_queue("victim", BackendSpec::CoarseHeap, QuotaSpec::unlimited())
                    .unwrap();
                client.use_queue("victim").unwrap();
                for key in 0..VICTIM_KEYS {
                    client.insert((cycle << 16) | key, key).unwrap();
                }
                client.drop_queue("victim").unwrap();
            }
            done.store(true, Ordering::SeqCst);
        });

        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = PqClient::connect(addr).unwrap();
                    let mut responses = 0u64;
                    let mut saw_victim = false;
                    while !done.load(Ordering::SeqCst) || responses == 0 {
                        // Decode totality: a torn or short frame surfaces
                        // here as a ClientError, not as a wrong value.
                        let stats = client.stats().unwrap();
                        responses += 1;

                        let mut names: Vec<&str> =
                            stats.queues.iter().map(|r| r.name.as_str()).collect();
                        names.sort_unstable();
                        let before = names.len();
                        names.dedup();
                        assert_eq!(names.len(), before, "duplicate per-queue rows");

                        let mut row_inserts = 0u64;
                        for row in &stats.queues {
                            row_inserts += row.totals.inserts;
                            if let Some(name) = row.name.strip_prefix("keep/") {
                                let idx: usize = name.parse().expect("torn keep name");
                                assert!(idx < KEEP, "invented keep row {}", row.name);
                                assert_eq!(row.totals.inserts, KEEP_KEYS, "{}", row.name);
                                assert_eq!(row.totals.removals, 0, "{}", row.name);
                                assert_eq!(row.approx_len, KEEP_KEYS, "{}", row.name);
                            } else {
                                // The churning queue: absent is fine; when
                                // present the row is complete and every
                                // counter is within one incarnation's reach.
                                assert_eq!(row.name, "victim", "garbage row name");
                                saw_victim = true;
                                assert!(row.totals.inserts <= VICTIM_KEYS, "torn counter");
                                assert!(row.approx_len <= VICTIM_KEYS, "torn length");
                                assert_eq!(row.totals.removals, 0, "victim is never drained");
                            }
                        }
                        // Every keep row is present in every response —
                        // churn on one name never hides the others.
                        assert_eq!(
                            stats
                                .queues
                                .iter()
                                .filter(|r| r.name.starts_with("keep/"))
                                .count(),
                            KEEP,
                            "a stable queue's row went missing"
                        );
                        // Aggregate totals fold the retired roll-up over the
                        // live rows, so they can only exceed the row sum.
                        assert!(
                            stats.totals.inserts >= row_inserts,
                            "aggregate below its own per-queue rows"
                        );
                    }
                    (responses, saw_victim)
                })
            })
            .collect();

        dropper.join().unwrap();
        for reader in readers {
            let (responses, _saw_victim) = reader.join().unwrap();
            assert!(responses > 0, "reader never completed a Stats call");
        }
    });

    // Quiescent close-out: the last cycle ended in a drop, so only the
    // stable rows remain and the retired roll-up holds every incarnation's
    // history — nothing was lost to the churn.
    let stats = server.join();
    assert_eq!(stats.queues.len(), KEEP, "only the stable queues remain");
    assert_eq!(
        stats.totals.inserts,
        KEEP as u64 * KEEP_KEYS + CYCLES * VICTIM_KEYS,
        "every incarnation's inserts survive in the aggregate"
    );
    assert_eq!(stats.totals.removals, 0);
}
