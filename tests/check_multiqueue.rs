//! The *real* `MultiQueue` under explored schedules (`--features check`).
//!
//! `tests/check_lane_table.rs` checks a miniature of the resize protocol
//! exhaustively; this suite closes the model–implementation gap by running
//! the production `choice_pq::MultiQueue` itself — its mutexes and atomics
//! routed through the explorer by the `check` cargo feature — under
//! bounded-random schedules. Exhaustive DFS is out of reach here (a single
//! real operation has dozens of schedule points), so coverage scales with
//! `CHECK_SCHEDULES` (PR CI keeps the default; the stress job deepens it).
//!
//! Run with: `cargo test --features check --test check_multiqueue`

#![cfg(feature = "check")]

use std::sync::Arc;

use choice_check as check;
use choice_pq::{ElasticPolicy, HandlePolicy, MultiQueue, MultiQueueConfig, PqHandle};

/// A 2-lane elastic queue whose controller is parked (huge check interval):
/// resizes happen only where the model calls `resize_active`.
fn small_config() -> MultiQueueConfig {
    MultiQueueConfig::with_queues(2).with_elastic(
        ElasticPolicy::default()
            .with_min_lanes(1)
            .with_check_interval(1_000_000),
    )
}

/// Two sessions insert and pop while a third thread shrinks and re-grows
/// the lane table. Whatever the interleaving, the multiset of keys out must
/// equal the multiset in: nothing lost in a retired lane, nothing duplicated
/// by the refugee re-publish.
#[test]
fn real_multiqueue_conserves_keys_across_concurrent_resize() {
    let schedules = check::schedule_budget(192);
    check::model_with(
        check::Config {
            max_steps: 20_000,
            ..check::Config::random(schedules, 0xC0FFEE)
        },
        || {
            let q = Arc::new(MultiQueue::<u64>::new(small_config()));
            let mut workers = Vec::new();
            for t in 0..2u64 {
                let q = Arc::clone(&q);
                workers.push(check::spawn(move || {
                    let mut h = q.register_with(HandlePolicy::plain());
                    let mut popped = Vec::new();
                    h.insert(10 + t, 10 + t);
                    h.insert(20 + t, 20 + t);
                    if let Some((k, v)) = h.delete_min() {
                        assert_eq!(k, v, "key/value pairing broken");
                        popped.push(k);
                    }
                    popped
                }));
            }
            let qr = Arc::clone(&q);
            let resizer = check::spawn(move || {
                qr.resize_active(1);
                qr.resize_active(2);
            });
            let mut seen: Vec<u64> = workers.into_iter().flat_map(|w| w.join()).collect();
            resizer.join();

            // Quiesced: drain the remainder. Bounded loop — a sparse sample
            // can miss once, but with no writers the steal fallback finds
            // every survivor within a few attempts.
            let mut h = q.register_with(HandlePolicy::plain());
            for _ in 0..16 {
                if seen.len() == 4 {
                    break;
                }
                if let Some((k, _)) = h.delete_min() {
                    seen.push(k);
                }
            }
            seen.sort_unstable();
            assert_eq!(
                seen,
                vec![10, 11, 20, 21],
                "keys lost or duplicated across resize (epoch {}, active {})",
                q.resize_epoch(),
                q.active_lanes()
            );
        },
    );
}

/// Single-session sanity under the explorer: the handle hot path (sticky
/// lanes, per-handle RNG, batch buffer) behaves identically with
/// instrumented primitives.
#[test]
fn real_multiqueue_single_session_orders_keys() {
    check::model_with(check::Config::random(check::schedule_budget(32), 7), || {
        let q = MultiQueue::<u32>::new(small_config());
        let mut h = q.register_with(HandlePolicy::plain());
        for k in [5u64, 3, 9, 1] {
            h.insert(k, k as u32);
        }
        let mut out = Vec::new();
        while let Some((k, _)) = h.delete_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 9], "single session must drain in order");
    });
}
