//! The lane fast-path protocol under the interleaving explorer.
//!
//! Two layers, mirroring `check_lane_table`:
//!
//! 1. **The production `MultiQueue`** compiled with `--features check`, driven
//!    straight into the historical batched-insert `len` underflow window
//!    (first test below — it failed before the fix moved the `len` credit
//!    under the exclusive borrow).
//! 2. **A coarsened model of the lane protocol** (DESIGN.md §13): the borrow
//!    word, the seqlock-stamped top, the side-buffer fold points and the
//!    Dekker-style publisher-count/shrink pairing, each proven exhaustively
//!    clean — and each of the three tempting mis-orderings (top published
//!    before the heap update, side-buffer folded after the pop, borrow
//!    counter decremented before the push lands) shown to fail, with the
//!    failing schedule replayed live and from a pinned string.
//!
//! Run with: `cargo test --features check --test check_lane_fastpath`

#![cfg(feature = "check")]

use std::sync::Arc;

use check::sync::{AtomicU64, Ordering};
use choice_check as check;
use choice_pq::{HandlePolicy, MultiQueue, MultiQueueConfig, PqHandle, SharedPq};

/// Regression model for the batched-insert `len` underflow: a batch flush
/// used to publish its elements into the lane heap under the lane lock but
/// bump the global `len` only after releasing it, so a drain scheduled into
/// that window popped the elements and `fetch_sub`'d `len` below zero —
/// wrapping `approx_len()` to ~2^64. The explorer drives the production
/// queue straight into that window; with the add under the lane lock the
/// model is clean under the same budget.
#[test]
fn batched_insert_never_underflows_len() {
    let schedules = check::schedule_budget(2_000);
    check::model_with(
        check::Config {
            max_steps: 20_000,
            ..check::Config::random(schedules, 0xBA7C4)
        },
        || {
            let q = Arc::new(MultiQueue::<u64>::new(
                MultiQueueConfig::with_queues(1).with_seed(11),
            ));
            // One element pre-published so the racing drain does not take
            // the len == 0 quiescent-empty early exit.
            q.register_with(HandlePolicy::plain()).insert(0, 0);
            let qa = Arc::clone(&q);
            let inserter = check::spawn(move || {
                let mut h = qa.register_with(HandlePolicy::plain().with_insert_batch(2));
                h.insert(1, 1);
                h.insert(2, 2); // second buffered insert flushes the batch
            });
            let qb = Arc::clone(&q);
            let drainer = check::spawn(move || {
                let mut h = qb.register_with(HandlePolicy::plain());
                let mut out = Vec::new();
                for _ in 0..2 {
                    h.delete_min_batch_into(3, &mut out);
                    let len = qb.approx_len();
                    assert!(
                        len <= 3,
                        "approx_len() exceeds total-inserted: {len} (len underflow)"
                    );
                }
                out.len()
            });
            inserter.join();
            let drained = drainer.join();
            let len = q.approx_len();
            assert!(
                len <= 3,
                "approx_len() exceeds total-inserted at quiescence: {len}"
            );
            assert_eq!(len, 3 - drained, "conservation: len + drained == inserted");
        },
    );
}

// ---------------------------------------------------------------------------
// Coarsened protocol model (DESIGN.md §13).
//
// `crate::lane::Lane` reduced to what the protocol orders: the borrow word
// (`EXCL` bit + publisher count), the seqlock stamp, the published top and
// the global `len` credit. Each model moves a single element (key 5), so
// the heap and the side-buffer coarsen to one-element atomic slots
// (0 = empty) — the real heap is an `UnsafeCell` proven unique by `EXCL`
// and the real side-buffer a wait-free MPSC list, and neither adds
// protocol-relevant interleavings beyond the atomic visibility the slots
// keep. One schedule point per touch keeps every model small enough for
// the DFS to exhaust.
// ---------------------------------------------------------------------------

const EMPTY: u64 = u64::MAX;
const EXCL: u64 = 1 << 63;
const COUNT_MASK: u64 = EXCL - 1;

/// Which orderings the model performs faithfully. Each `false` is one of
/// the tempting mis-orderings the protocol comments warn about.
#[derive(Clone, Copy)]
struct Variant {
    /// Publish `top` only after the element is in the heap and `len` is
    /// credited (the real protocol); `false` advertises the top first.
    top_after_element: bool,
    /// Fold the side-buffer into the heap *before* popping (the real
    /// protocol's fold-at-acquire); `false` folds only at release.
    fold_before_pop: bool,
    /// Keep the publisher count up until the side push lands (the real
    /// protocol); `false` is the blind decrement before the push.
    deregister_after_push: bool,
}

const FAITHFUL: Variant = Variant {
    top_after_element: true,
    fold_before_pop: true,
    deregister_after_push: true,
};

/// One lane, coarsened to single-element heap/side slots.
struct LaneModel {
    /// Borrow word: bit 63 exclusive, low bits in-flight side publishers.
    state: AtomicU64,
    /// Seqlock stamp: odd while a drain-type exclusive section runs.
    top_seq: AtomicU64,
    /// Published cached minimum ([`EMPTY`] for an empty lane).
    top: AtomicU64,
    /// Global element credit (`MultiQueue::len`).
    len: AtomicU64,
    /// Side-buffer slot: the key, or 0 for empty.
    side: AtomicU64,
    /// Heap slot: the key, or 0 for empty.
    heap: AtomicU64,
}

impl LaneModel {
    fn new() -> Self {
        Self {
            state: AtomicU64::new(0),
            top_seq: AtomicU64::new(0),
            top: AtomicU64::new(EMPTY),
            len: AtomicU64::new(0),
            side: AtomicU64::new(0),
            heap: AtomicU64::new(0),
        }
    }

    /// Folds the side slot into the heap slot (caller holds `EXCL`).
    fn fold(&self) {
        let k = self.side.swap(0, Ordering::AcqRel);
        if k != 0 {
            self.heap.store(k, Ordering::Release);
        }
    }

    /// Pops the heap slot (caller holds `EXCL`).
    fn pop_min(&self) -> Option<u64> {
        let k = self.heap.swap(0, Ordering::AcqRel);
        (k != 0).then_some(k)
    }
}

// ---------------------------------------------------------------------------
// Property 1: a settled non-empty top sample is backed by a published
// element — `sample_top()` never advertises a phantom key.
// ---------------------------------------------------------------------------

/// A direct insert publishes key 5 under the exclusive borrow while a
/// lock-free sampler performs the seqlock read from `Lane::sample_top`. The
/// faithful order (heap, then `len`, then `top`) means a validated
/// non-[`EMPTY`] sample always implies a positive credit; the broken order
/// stores `top` first, so the sampler acts on a key no drain could return.
fn phantom_top_model(variant: Variant) {
    let lane = Arc::new(LaneModel::new());
    let li = Arc::clone(&lane);
    let inserter = check::spawn(move || {
        let prev = li.state.fetch_or(EXCL, Ordering::AcqRel);
        assert_eq!(prev & EXCL, 0, "sole borrower in this model");
        // Insert-type section: the seqlock stamp stays even throughout.
        if variant.top_after_element {
            li.heap.store(5, Ordering::Release);
            li.len.fetch_add(1, Ordering::Release);
            li.top.store(5, Ordering::Release);
        } else {
            li.top.store(5, Ordering::Release); // advertised before it exists
            li.heap.store(5, Ordering::Release);
            li.len.fetch_add(1, Ordering::Release);
        }
        li.state.fetch_and(!EXCL, Ordering::Release);
    });
    let ls = Arc::clone(&lane);
    let sampler = check::spawn(move || {
        // Lane::sample_top, with the witness (`len`) read inside the window.
        let s1 = ls.top_seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return;
        }
        let top = ls.top.load(Ordering::Acquire);
        let len = ls.len.load(Ordering::Acquire);
        if ls.top_seq.load(Ordering::Acquire) != s1 {
            return;
        }
        if top != EMPTY {
            // Every `len` decrement happens inside a drain-type (odd-stamp)
            // section, so a validated even-stamp window with a non-empty
            // top must overlap a positive credit.
            assert!(
                len > 0,
                "phantom top: sampler saw key {top} with no published element"
            );
        }
    });
    inserter.join();
    sampler.join();
    assert_eq!(lane.heap.load(Ordering::Acquire), 5);
    assert_eq!(lane.top.load(Ordering::Acquire), 5);
    assert_eq!(lane.len.load(Ordering::Acquire), 1);
}

#[test]
fn faithful_top_publish_is_backed_by_an_element() {
    let report = check::explore(check::Config::dfs(100_000), || phantom_top_model(FAITHFUL))
        .expect("publishing top after the heap update leaves no phantom window");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn top_published_before_heap_update_advertises_a_phantom_element() {
    let variant = Variant {
        top_after_element: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        phantom_top_model(variant)
    })
    .expect_err("storing top first lets a sampler act on a key no drain can return");
    assert!(
        failure.message.contains("phantom top"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || phantom_top_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(
        failure.schedule, PINNED_PHANTOM_TOP,
        "DFS is deterministic: first failing schedule is stable; \
         update the pinned constant if the model legitimately changed"
    );
}

// ---------------------------------------------------------------------------
// Property 2: an exclusive drain acquired after a completed side publish
// sees the element — the fold-at-acquire is what linearizes the wait-free
// insert before the drain.
// ---------------------------------------------------------------------------

/// One wait-free side publisher races one drain. If the publisher finished
/// (push landed, publisher count back down) before the drain even started,
/// the drain must pop the element; the broken variant folds the side-buffer
/// only at release, after the pop, so a completed insert stays invisible to
/// the very drain that should return it. (The seqlock stamp and `top` are
/// untouched here — property 1 covers them — to keep the space small.)
fn side_fold_model(variant: Variant) {
    let lane = Arc::new(LaneModel::new());
    let done = Arc::new(AtomicU64::new(0));
    let (li, done_w) = (Arc::clone(&lane), Arc::clone(&done));
    let inserter = check::spawn(move || {
        // The side-publish path: register, credit len, push, deregister.
        li.state.fetch_add(1, Ordering::SeqCst);
        li.len.fetch_add(1, Ordering::Release);
        li.side.store(5, Ordering::Release);
        li.state.fetch_sub(1, Ordering::Release);
        done_w.store(1, Ordering::Release);
    });
    let (ld, done_r) = (Arc::clone(&lane), Arc::clone(&done));
    let drainer = check::spawn(move || {
        let insert_was_complete = done_r.load(Ordering::Acquire) == 1;
        let prev = ld.state.fetch_or(EXCL, Ordering::AcqRel);
        assert_eq!(prev & EXCL, 0, "side publishers never hold the borrow");
        if variant.fold_before_pop {
            ld.fold();
        }
        let popped = ld.pop_min();
        if popped.is_some() {
            ld.len.fetch_sub(1, Ordering::Release);
        }
        if !variant.fold_before_pop {
            ld.fold();
        }
        ld.state.fetch_and(!EXCL, Ordering::Release);
        if insert_was_complete {
            assert_eq!(
                popped,
                Some(5),
                "stale drain: completed side publish invisible to a later exclusive drain"
            );
        }
        popped
    });
    inserter.join();
    let popped = drainer.join();
    let left = usize::from(lane.heap.load(Ordering::Acquire) != 0)
        + usize::from(lane.side.load(Ordering::Acquire) != 0);
    assert_eq!(
        left + usize::from(popped.is_some()),
        1,
        "conservation: the element is popped or still held"
    );
    assert_eq!(
        lane.len.load(Ordering::Acquire) as usize,
        left,
        "len matches the unpopped remainder"
    );
}

#[test]
fn faithful_drain_sees_every_completed_side_publish() {
    let report = check::explore(check::Config::dfs(100_000), || side_fold_model(FAITHFUL))
        .expect("the fold-at-acquire linearizes completed side publishes before the pop");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn side_buffer_folded_after_pop_hides_a_completed_insert() {
    let variant = Variant {
        fold_before_pop: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        side_fold_model(variant)
    })
    .expect_err("folding only at release makes a finished insert invisible to the drain");
    assert!(
        failure.message.contains("stale drain"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || side_fold_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(
        failure.schedule, PINNED_STALE_DRAIN,
        "DFS is deterministic: first failing schedule is stable; \
         update the pinned constant if the model legitimately changed"
    );
}

// ---------------------------------------------------------------------------
// Property 3: the shrink idle-check is sound — observing a zero publisher
// count after publishing the shrunk table means no element can land in the
// retired lane afterwards (DESIGN.md §13.4, the Dekker pairing).
// ---------------------------------------------------------------------------

/// An inserter side-publishes into lane 1 while a shrinker retires it
/// (2 → 1 lanes). The shrinker publishes the shrunk table, takes the
/// drain-type borrow, and — like `resize_locked` — treats a zero publisher
/// count as "every racing publisher either landed its push or will see the
/// new table and reroute". The real shrinker spins until the count is zero;
/// the model checks the soundness of the *observed-idle* decision itself,
/// so a non-zero count simply aborts the retire (vacuously fine). The
/// broken variant decrements the count before the push lands, so the
/// shrinker's idle read passes early and the element strands in a lane no
/// d-choice sample will ever visit again.
fn shrink_idle_model(variant: Variant) {
    let lane = Arc::new(LaneModel::new()); // the retiring lane (index 1)
    let active = Arc::new(AtomicU64::new(2));
    let floor = Arc::new(AtomicU64::new(0)); // surviving lane 0, coarsened
    let (li, ai, fi) = (Arc::clone(&lane), Arc::clone(&active), Arc::clone(&floor));
    let inserter = check::spawn(move || {
        // side_publish_one: register, revalidate against the table, push.
        li.state.fetch_add(1, Ordering::SeqCst);
        if ai.load(Ordering::SeqCst) < 2 {
            // Revalidation failed: the lane is retiring; reroute.
            li.state.fetch_sub(1, Ordering::Release);
            fi.store(5, Ordering::Release);
        } else if variant.deregister_after_push {
            li.side.store(5, Ordering::Release);
            li.state.fetch_sub(1, Ordering::Release);
        } else {
            li.state.fetch_sub(1, Ordering::Release); // blind decrement
            li.side.store(5, Ordering::Release);
        }
    });
    let (ls, table, fs) = (Arc::clone(&lane), Arc::clone(&active), Arc::clone(&floor));
    let shrinker = check::spawn(move || {
        table.store(1, Ordering::SeqCst); // publish the shrunk table first (§7)
        let prev = ls.state.fetch_or(EXCL, Ordering::AcqRel);
        assert_eq!(prev & EXCL, 0, "side publishers never hold the borrow");
        let retired = if ls.state.load(Ordering::SeqCst) & COUNT_MASK == 0 {
            // Idle observed: final fold, refugees to the surviving lane.
            let refugee = ls.side.swap(0, Ordering::AcqRel);
            if refugee != 0 {
                fs.store(refugee, Ordering::Release);
            }
            true
        } else {
            false // the real shrinker would spin and re-read
        };
        ls.state.fetch_and(!EXCL, Ordering::Release);
        retired
    });
    inserter.join();
    let retired = shrinker.join();
    if retired {
        assert_eq!(
            lane.side.load(Ordering::Acquire),
            0,
            "stranded element: shrink observed an idle lane, then a push landed in it"
        );
        assert_eq!(
            floor.load(Ordering::Acquire),
            5,
            "the key survives in the active prefix"
        );
    }
}

#[test]
fn faithful_shrink_idle_check_strands_no_element() {
    let report = check::explore(check::Config::dfs(100_000), || shrink_idle_model(FAITHFUL))
        .expect("a publisher is counted until its push lands, so idle means folded");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn blind_deregister_lets_shrink_retire_a_lane_mid_publish() {
    let variant = Variant {
        deregister_after_push: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        shrink_idle_model(variant)
    })
    .expect_err("decrementing before the push lets the idle check pass early");
    assert!(
        failure.message.contains("stranded element"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || shrink_idle_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(
        failure.schedule, PINNED_STRANDED,
        "DFS is deterministic: first failing schedule is stable; \
         update the pinned constant if the model legitimately changed"
    );
}

// ---------------------------------------------------------------------------
// Pinned replay regressions (schedule strings captured from the DFS runs
// above; regenerate by printing `failure.schedule` if a model changes).
// ---------------------------------------------------------------------------

/// Replays all three pinned schedules, so a regression in the explorer or
/// the protocol reproduces from this file alone.
#[test]
fn pinned_schedules_replay_every_broken_variant() {
    let phantom = check::replay(PINNED_PHANTOM_TOP, || {
        phantom_top_model(Variant {
            top_after_element: false,
            ..FAITHFUL
        })
    })
    .expect_err("pinned phantom-top schedule still fails");
    assert!(phantom.message.contains("phantom top"));
    let stale = check::replay(PINNED_STALE_DRAIN, || {
        side_fold_model(Variant {
            fold_before_pop: false,
            ..FAITHFUL
        })
    })
    .expect_err("pinned stale-drain schedule still fails");
    assert!(stale.message.contains("stale drain"));
    let stranded = check::replay(PINNED_STRANDED, || {
        shrink_idle_model(Variant {
            deregister_after_push: false,
            ..FAITHFUL
        })
    })
    .expect_err("pinned stranded-element schedule still fails");
    assert!(stranded.message.contains("stranded element"));
}

/// First failing DFS schedule for the phantom-top variant.
const PINNED_PHANTOM_TOP: &str = "0,0,0,1,1,1,1,2,2,2,2,1,1,0,2";
/// First failing DFS schedule for the fold-after-pop variant.
const PINNED_STALE_DRAIN: &str = "0,0,0,1,1,1,1,1,1,0,2,2,2,2,2,2,2";
/// First failing DFS schedule for the blind-decrement variant.
const PINNED_STRANDED: &str = "0,0,0,1,1,1,1,2,2,2,2,2,1,0,2,0,0";
