//! Model-checks the registry's admission pair (DESIGN.md §8, `choice_registry`'s
//! `admit`): a bounded in-flight window claimed by CAS, then a per-tenant
//! [`rank_stats::TokenBucket`] take with a background-class reserve.
//!
//! The window half is mirrored (the counter discipline is the protocol); the
//! rate half runs the **real** `TokenBucket` behind an explorer mutex with
//! frozen explicit time, so the checked reserve arithmetic is the shipped
//! arithmetic. Properties, under every explored interleaving:
//!
//! * **the window never goes negative and never exceeds its bound** — claims
//!   are CAS-guarded (`v < max → v + 1`) and a refusal only returns a unit
//!   that was actually claimed;
//! * **the urgent reserve is never starved** — background takes leave
//!   `capacity / 2` tokens behind, so an urgent take that fits in the
//!   reserve is admitted no matter how the background class is scheduled.
//!
//! Broken variants seeded deliberately, each failing with a replayable
//! schedule: claiming by blind `fetch_add` with a check-after (the window
//! overshoots between the add and the give-back), releasing on refusal even
//! when nothing was claimed (the window underflows), and admitting
//! background traffic with reserve zero (urgent starves).

use std::sync::Arc;

use check::sync::{AtomicU64, Mutex, Ordering};
use choice_check as check;
use rank_stats::TokenBucket;

/// Frozen explicit time: every take happens "now", so the bucket never
/// refills and the model stays finite and deterministic.
const NOW: u64 = 0;

/// Which protocol steps the model performs faithfully.
#[derive(Clone, Copy)]
struct Variant {
    /// Claim the in-flight unit with a `v < max → v + 1` CAS loop (the real
    /// registry). `false` is the blind add-then-check bug.
    cas_claim: bool,
    /// On a rate refusal, give back the in-flight unit only if this call
    /// claimed one (the real registry). `false` releases unconditionally.
    release_only_claimed: bool,
    /// Background takes keep `capacity / 2` tokens in reserve (the real
    /// registry's shed policy). `false` admits background with reserve 0.
    background_reserve: bool,
}

const FAITHFUL: Variant = Variant {
    cas_claim: true,
    release_only_claimed: true,
    background_reserve: true,
};

/// The admission seam: in-flight window + one tenant's token bucket.
struct Gate {
    inflight: AtomicU64,
    max_inflight: u64,
    /// The bucket's burst, duplicated outside the lock so computing the
    /// reserve does not serialise with the take.
    burst: f64,
    bucket: Mutex<TokenBucket>,
}

impl Gate {
    fn new(max_inflight: u64, burst: f64) -> Self {
        Self {
            inflight: AtomicU64::new(0),
            max_inflight,
            burst,
            // Rate is irrelevant at frozen time; any positive value works.
            bucket: Mutex::new(TokenBucket::new(1.0, burst)),
        }
    }

    /// Returns one in-flight unit, asserting it matches a prior claim.
    fn release(&self) {
        let prev = self.inflight.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "admission window went negative");
    }
}

/// One admission decision, mirroring `choice_registry`'s `admit`:
/// claim the window (inserts only), then charge the bucket; a rate refusal
/// rolls the claim back.
fn admit(gate: &Gate, takes_slot: bool, background: bool, variant: Variant) -> bool {
    let mut claimed = false;
    if takes_slot {
        if variant.cas_claim {
            loop {
                let v = gate.inflight.load(Ordering::SeqCst);
                if v >= gate.max_inflight {
                    return false;
                }
                if gate
                    .inflight
                    .compare_exchange(v, v + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
            }
        } else {
            // Broken: the window transiently exceeds its bound between the
            // add and the give-back.
            let prev = gate.inflight.fetch_add(1, Ordering::SeqCst);
            if prev >= gate.max_inflight {
                gate.inflight.fetch_sub(1, Ordering::SeqCst);
                return false;
            }
        }
        claimed = true;
    }
    let reserve = if background {
        if variant.background_reserve {
            gate.burst * 0.5
        } else {
            0.0
        }
    } else {
        0.0
    };
    let admitted = gate.bucket.lock().try_take(NOW, 1.0, reserve);
    if !admitted && (claimed || !variant.release_only_claimed) {
        gate.release();
    }
    admitted
}

// ---------------------------------------------------------------------------
// Property 1: the in-flight window stays within [0, max].
// ---------------------------------------------------------------------------

/// Two inserters race for a window of one while a monitor observes the
/// counter; the bucket is ample so only the window decides.
fn window_bound_model(variant: Variant) {
    let g = Arc::new(Gate::new(1, 16.0));
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let g = Arc::clone(&g);
            check::spawn(move || admit(&g, true, false, variant))
        })
        .collect();
    let gm = Arc::clone(&g);
    let monitor = check::spawn(move || {
        for _ in 0..2 {
            let v = gm.inflight.load(Ordering::SeqCst);
            assert!(
                v <= gm.max_inflight,
                "admission window exceeded its bound: {v} in flight, max {}",
                gm.max_inflight
            );
            check::spin();
        }
    });
    let admitted = threads
        .into_iter()
        .map(|t| t.join())
        .filter(|ok| *ok)
        .count();
    monitor.join();
    assert_eq!(admitted, 1, "exactly one claim fits a window of one");
    assert_eq!(g.inflight.load(Ordering::SeqCst), 1);
}

#[test]
fn cas_claimed_window_never_exceeds_its_bound() {
    // Too many schedule points (CAS retries × bucket lock × monitor) to
    // exhaust; an overshoot needs at most two preemptions, so a
    // preemption-bounded DFS covers the interesting schedules.
    let report = check::explore(
        check::Config {
            preemption_bound: Some(2),
            ..check::Config::dfs(check::schedule_budget(20_000))
        },
        || window_bound_model(FAITHFUL),
    )
    .expect("a guarded CAS claim cannot overshoot the window");
    assert!(report.schedules > 100, "exploration actually branched");
}

#[test]
fn blind_add_then_check_overshoots_the_window() {
    let variant = Variant {
        cas_claim: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        window_bound_model(variant)
    })
    .expect_err("fetch_add exposes a transient over-bound window to the monitor");
    assert!(
        failure.message.contains("exceeded its bound"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || window_bound_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
}

// ---------------------------------------------------------------------------
// Property 2: a refusal only returns a unit that was claimed.
// ---------------------------------------------------------------------------

/// An insert (claims a unit) and a removal (claims nothing) both hit an
/// empty bucket and are refused; only the insert may roll back.
fn refusal_rollback_model(variant: Variant) {
    let g = Arc::new(Gate::new(2, 2.0));
    // Drain the burst up front so every take below is refused.
    {
        let mut b = g.bucket.lock();
        assert!(b.try_take(NOW, 2.0, 0.0));
    }
    let gi = Arc::clone(&g);
    let inserter = check::spawn(move || {
        assert!(!admit(&gi, true, false, variant), "bucket is empty");
    });
    let gr = Arc::clone(&g);
    let remover = check::spawn(move || {
        assert!(!admit(&gr, false, false, variant), "bucket is empty");
    });
    inserter.join();
    remover.join();
    assert_eq!(
        g.inflight.load(Ordering::SeqCst),
        0,
        "every claim was rolled back, nothing else"
    );
}

#[test]
fn refusal_rolls_back_only_claimed_units() {
    let report = check::explore(check::Config::dfs(100_000), || {
        refusal_rollback_model(FAITHFUL)
    })
    .expect("claim-guarded rollback cannot underflow");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn releasing_an_unclaimed_unit_underflows_the_window() {
    let variant = Variant {
        release_only_claimed: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        refusal_rollback_model(variant)
    })
    .expect_err("an unconditional rollback returns a unit nobody claimed");
    assert!(
        failure.message.contains("went negative"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || refusal_rollback_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
}

// ---------------------------------------------------------------------------
// Property 3: the urgent reserve is never starved by background traffic.
// ---------------------------------------------------------------------------

/// Background issues two takes against a burst of two while urgent issues
/// one. With the `capacity / 2` reserve, at most one background take lands
/// and the urgent take always finds a token — under *every* schedule.
fn reserve_model(variant: Variant) {
    let g = Arc::new(Gate::new(8, 2.0));
    let gb = Arc::clone(&g);
    let background =
        check::spawn(move || (0..2).filter(|_| admit(&gb, true, true, variant)).count());
    let gu = Arc::clone(&g);
    let urgent = check::spawn(move || {
        assert!(
            admit(&gu, true, false, variant),
            "urgent starved: the reserve headroom was spent on background"
        );
    });
    let background_admitted = background.join();
    urgent.join();
    assert!(
        background_admitted <= 1,
        "reserve must shed the second background take"
    );
}

#[test]
fn urgent_reserve_survives_every_background_schedule() {
    let report = check::explore(check::Config::dfs(100_000), || reserve_model(FAITHFUL))
        .expect("capacity/2 reserve always leaves the urgent take a token");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn zero_reserve_lets_background_starve_urgent() {
    let variant = Variant {
        background_reserve: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || reserve_model(variant))
        .expect_err("without the reserve, background can drain the burst first");
    assert!(
        failure.message.contains("urgent starved")
            || failure.message.contains("shed the second background take"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || reserve_model(variant))
        .expect_err("failing schedule must replay deterministically");
    assert_eq!(replayed.message, failure.message);
}
