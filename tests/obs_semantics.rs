//! Integration tests for the choice-obs layer: snapshot consistency of the
//! sharded metrics registry under concurrent writers, the wire-level
//! `Stats`/`MetricsDump` ops racing queue churn and elastic resizes, and
//! the acceptance check that a forced quota refusal plus elastic resizes
//! land in the flight recorder with their tenants and epochs intact.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use power_of_choice::multiqueue::QueueObs;
use power_of_choice::obs::refusal_category;
use power_of_choice::prelude::*;

const WRITERS: usize = 4;
const PER_WRITER: u64 = 20_000;

/// Four writer threads hammer one shared counter, gauge and histogram while
/// a reader takes merged snapshots the whole time. Mid-churn snapshots must
/// be monotonic (counters) and bounded (the gauge's balanced inc/dec pairs
/// never leave `[-WRITERS, WRITERS]`); the final merge must conserve every
/// write exactly — the shard-merge consistency claim of `DESIGN.md`.
#[test]
fn counter_sums_are_conserved_across_shard_merges_under_churn() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("churn_total", &[("suite", "obs")]);
    let gauge = registry.gauge("churn_inflight", &[("suite", "obs")]);
    let histogram = registry.histogram("churn_value", &[("suite", "obs")]);
    let done = AtomicBool::new(false);
    let total = WRITERS as u64 * PER_WRITER;

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|_| {
                let counter = Arc::clone(&counter);
                let gauge = Arc::clone(&gauge);
                let histogram = Arc::clone(&histogram);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        counter.inc();
                        gauge.inc();
                        histogram.record(i);
                        gauge.dec();
                    }
                })
            })
            .collect();
        let reader = scope.spawn(|| {
            let mut last_count = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = registry.snapshot();
                let count = snap
                    .counter("churn_total", &[("suite", "obs")])
                    .expect("the counter cell exists from registration");
                assert!(
                    count >= last_count,
                    "merged counter went backwards: {count} < {last_count}"
                );
                assert!(count <= total, "merged counter overshot: {count} > {total}");
                last_count = count;
                let g = snap
                    .gauge("churn_inflight", &[("suite", "obs")])
                    .expect("the gauge cell exists from registration");
                assert!(
                    g.unsigned_abs() <= WRITERS as u64,
                    "balanced inc/dec pairs can never skew the merge past \
                     one pending increment per writer, got {g}"
                );
                let h = snap
                    .histogram("churn_value", &[("suite", "obs")])
                    .expect("the histogram cell exists from registration");
                assert_eq!(
                    h.count(),
                    h.buckets.iter().sum::<u64>(),
                    "a histogram snapshot's count is its bucket total"
                );
                assert!(h.count() <= total);
                snapshots += 1;
            }
            snapshots
        });
        for w in writers {
            w.join().expect("writer");
        }
        done.store(true, Ordering::Relaxed);
        assert!(reader.join().expect("reader") >= 1);
    });

    // The final merge conserves every write exactly.
    assert_eq!(counter.value(), total);
    assert_eq!(gauge.value(), 0);
    let snap = registry.snapshot();
    let h = snap
        .histogram("churn_value", &[("suite", "obs")])
        .expect("histogram cell");
    assert_eq!(h.count(), total, "every recorded sample survives the merge");
    assert_eq!(
        h.sum,
        WRITERS as u64 * (PER_WRITER * (PER_WRITER - 1) / 2),
        "the merged sum is the exact arithmetic total of all samples"
    );
    assert_eq!(h.max, PER_WRITER - 1);
}

/// `Stats` and `MetricsDump` polled flat-out while other connections churn
/// a named queue through create/insert/drop cycles and a third thread
/// grows/shrinks the elastic default queue. Neither op may ever error or
/// tear: the summed `resize_epoch` stays monotonic (only the never-dropped
/// default queue has a topology) and every dump line stays scrapeable.
#[test]
fn stats_and_metrics_dump_race_queue_churn_and_resizes() {
    let queue = Arc::new(MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(8)
            .with_seed(11)
            .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
    ));
    let erased: Arc<dyn DynSharedPq<u64>> = Arc::clone(&queue) as _;
    let server = PqServer::spawn(erased, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr();
    let done = AtomicBool::new(false);

    let (observer_epoch, committed) = std::thread::scope(|scope| {
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                scope.spawn(move || {
                    let mut client = PqClient::connect(addr).expect("connect writer");
                    for n in 0..400u64 {
                        client.insert((w << 32) | n, n).expect("insert default");
                        if n % 4 == 3 {
                            client.delete_min().expect("delete default");
                        }
                    }
                })
            })
            .collect();
        let churner = scope.spawn(|| {
            let mut client = PqClient::connect(addr).expect("connect churner");
            for round in 0..25u64 {
                client
                    .create_queue(
                        "tenant/ephemeral",
                        BackendSpec::CoarseHeap,
                        QuotaSpec::unlimited().with_max_inflight(4),
                    )
                    .expect("recreate after drop");
                client.use_queue("tenant/ephemeral").expect("bind tenant");
                for n in 0..4u64 {
                    client
                        .insert(round * 16 + n, n)
                        .expect("insert under quota");
                }
                client.use_queue(DEFAULT_QUEUE).expect("rebind default");
                client.drop_queue("tenant/ephemeral").expect("drop tenant");
            }
        });
        let resizer = scope.spawn(|| {
            let mut committed = 0u64;
            for i in 0..60usize {
                if queue.resize_active(if i % 2 == 0 { 8 } else { 2 }) {
                    committed += 1;
                }
                std::thread::yield_now();
            }
            committed
        });
        let observer = scope.spawn(|| {
            let mut client = PqClient::connect(addr).expect("connect observer");
            let mut last_epoch = 0u64;
            let mut polls = 0u64;
            loop {
                let stats = client.stats().expect("Stats never errors mid-churn");
                assert!(
                    stats.resize_epoch >= last_epoch,
                    "summed resize_epoch went backwards: {} < {last_epoch}",
                    stats.resize_epoch
                );
                last_epoch = stats.resize_epoch;
                let dump = client
                    .metrics_dump(polls.is_multiple_of(2))
                    .expect("MetricsDump never errors mid-churn");
                assert!(
                    dump.contains("registry_inflight"),
                    "every dump carries the registry gauges"
                );
                for line in dump.lines() {
                    assert!(
                        line.is_empty()
                            || line.starts_with('#')
                            || line.split_whitespace().count() == 2,
                        "unscrapeable exposition line mid-churn: {line:?}"
                    );
                }
                polls += 1;
                if done.load(Ordering::Relaxed) {
                    break;
                }
            }
            (last_epoch, polls)
        });
        for w in writers {
            w.join().expect("writer");
        }
        churner.join().expect("churner");
        let committed = resizer.join().expect("resizer");
        done.store(true, Ordering::Relaxed);
        let (last_epoch, polls) = observer.join().expect("observer");
        assert!(polls >= 1, "the observer must have raced at least one poll");
        (last_epoch, committed)
    });

    let mut client = PqClient::connect(addr).expect("connect for final stats");
    let final_stats = client.stats().expect("final stats");
    assert!(
        final_stats.resize_epoch >= committed.max(observer_epoch),
        "the final epoch ({}) accounts for every committed resize ({committed}) \
         and never regresses below the last observed value ({observer_epoch})",
        final_stats.resize_epoch
    );
    client.shutdown_server().expect("shutdown");
    server.join();
}

/// The issue's acceptance check: force a quota refusal on a tenant queue
/// and two elastic resizes, then verify the flight recorder carries both
/// event kinds with the correct tenant, refusal category, epochs and lane
/// counts — in the structured events and in both dump renderings.
#[test]
fn quota_refusal_and_resize_dump_carries_epochs_and_tenants() {
    let hub = ObsHub::with_capacity(64);

    // One tenant queue with an in-flight quota of 1: the second admission
    // is refused and must land in the ring.
    let registry = QueueRegistry::default();
    registry.set_obs(Arc::clone(&hub));
    registry
        .create(
            "tenant/a",
            BackendSpec::CoarseHeap,
            QuotaSpec::unlimited().with_max_inflight(1),
        )
        .expect("fresh registry accepts the tenant queue");
    let binding = registry.bind("tenant/a").expect("bind tenant");
    binding.admit_insert(5).expect("first insert under quota");
    binding
        .admit_insert(6)
        .expect_err("the second in-flight insert is over quota");

    // An elastic MultiQueue resized twice: each committed resize records
    // its epoch and the lane counts either side.
    let mut queue = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(8)
            .with_seed(3)
            .with_elastic(ElasticPolicy::default().with_min_lanes(2)),
    );
    queue.attach_obs(QueueObs::new(&hub, "elastic"));
    assert!(queue.resize_active(4), "grow from the floor commits");
    assert!(queue.resize_active(8), "grow to the ceiling commits");

    let events = hub.recorder().events();
    let refusals: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::QuotaRefusal)
        .collect();
    assert_eq!(refusals.len(), 1, "exactly one forced refusal");
    assert_eq!(
        refusals[0].label, "tenant/a",
        "the refusal names its tenant"
    );
    assert_eq!(
        refusals[0].fields,
        [refusal_category::INFLIGHT, 6, 1],
        "refusal fields are [category, refused key, in-flight depth]"
    );

    let resizes: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::Resize)
        .collect();
    assert_eq!(resizes.len(), 2, "both committed resizes are recorded");
    for r in &resizes {
        assert_eq!(r.label, "elastic", "each resize names its queue");
    }
    assert_eq!(
        resizes[0].fields,
        [1, 2, 4],
        "first resize: epoch 1, floor of 2 lanes grown to 4"
    );
    assert_eq!(
        resizes[1].fields,
        [2, 4, 8],
        "second resize: epoch 2, 4 lanes grown to 8"
    );

    // The human-readable dump and the JSON dump both carry both kinds.
    let text = hub.recorder().dump_text();
    assert!(text.contains("quota-refusal") && text.contains("tenant/a"));
    assert!(text.contains("resize") && text.contains("epoch=2"));
    let json = hub.recorder().dump_json();
    assert!(json.contains("\"kind\":\"quota-refusal\""));
    assert!(json.contains("\"kind\":\"resize\""));
    let exposition = hub.render_dump(true);
    assert!(exposition.contains("# flight recorder"));
    assert!(exposition.contains("quota-refusal") && exposition.contains("resize"));
}

/// The contention-event rule: a publish that accumulates `lock_retries >=
/// contention_event_threshold` records a `LaneContention` event even when a
/// fast-path arm (here: the wait-free side-buffer) published — not just the
/// blocking floor-lane fallback, which used to be the only emitter while
/// fast-path retries reached only the elastic controller. Pinned so the
/// emission rule cannot silently regress to fallback-only.
#[test]
fn fast_path_contention_reaches_the_flight_recorder() {
    let hub = ObsHub::with_capacity(64);
    let mut queue = MultiQueue::<u64>::new(
        MultiQueueConfig::with_queues(2)
            .with_seed(7)
            .with_contention_event_threshold(1),
    );
    queue.attach_obs(QueueObs::new(&hub, "contended"));
    let mut h = queue.register();
    // Uncontended inserts publish directly: below the threshold, no events.
    h.insert(1, 1);
    h.insert(2, 2);
    assert!(
        hub.recorder()
            .events()
            .iter()
            .all(|e| e.kind != EventKind::LaneContention),
        "uncontended inserts must not record contention events"
    );
    // Hold lane 0's exclusive borrow and insert until a draw lands on it
    // (p = 1/2 per insert): that insert counts one failed acquisition
    // (>= threshold 1), publishes wait-free through the side-buffer, and
    // must surface in the flight recorder despite never falling back.
    queue.with_lane_locked(0, || {
        for k in 0..64u64 {
            h.insert(10 + k, k);
            if hub
                .recorder()
                .events()
                .iter()
                .any(|e| e.kind == EventKind::LaneContention)
            {
                break;
            }
        }
    });
    let events = hub.recorder().events();
    let contention: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::LaneContention)
        .collect();
    assert!(
        !contention.is_empty(),
        "a held lane must surface as a LaneContention event"
    );
    assert_eq!(contention[0].label, "contended");
    assert_eq!(
        contention[0].fields[0], 0,
        "the event names the lane that took the elements"
    );
    assert!(
        contention[0].fields[1] >= 1,
        "and carries the accumulated retry count"
    );
}

/// Drains an 8-element queue laid out one-element-per-lane and checks every
/// sampled shadow-probe value against the exact rank from a sorted mirror.
/// Returns `None` when the seed's random placement doubled up a lane (the
/// caller skips those layouts), else `(removals, summed rank error)`.
fn drain_with_exact_ranks(seed: u64) -> Option<(u64, u64)> {
    const KEYS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];
    let hub = ObsHub::new();
    let mut queue = MultiQueue::<u64>::new(MultiQueueConfig::with_queues(32).with_seed(seed));
    queue.attach_obs(QueueObs::with_sample_every(&hub, "exact", 1));
    let mut session = queue.register_with(HandlePolicy::plain());
    for key in KEYS {
        session.insert(key, key);
    }
    if queue.lane_lengths().iter().any(|&len| len > 1) {
        return None; // this seed stacked a lane: the bound is not exact here
    }

    let mut mirror: BTreeSet<u64> = KEYS.into_iter().collect();
    let mut last = (0u64, 0u64); // (count, sum) of mq_rank_error so far
    while let Some((key, _)) = session.delete_min() {
        assert!(mirror.remove(&key), "removed a key that was never inserted");
        // With every element sitting alone in its lane, each remaining
        // smaller element *is* a lane top, so the probe's lane count is the
        // removal's exact rank among the contents at removal time.
        let exact = 1 + mirror.range(..key).count() as u64;
        let snap = hub.metrics().snapshot();
        let h = snap
            .histogram("mq_rank_error", &[("queue", "exact")])
            .expect("stride-1 sampling records the probe on every removal");
        assert_eq!(h.count(), last.0 + 1, "exactly one probe per removal");
        assert_eq!(
            h.sum,
            last.1 + exact,
            "sampled rank-error for key {key} must equal the exact rank {exact}"
        );
        last = (h.count(), h.sum);
    }
    assert!(mirror.is_empty(), "the drain returned every element");
    assert_eq!(last.0, KEYS.len() as u64);
    Some(last)
}

/// The estimator's exactness claim (`DESIGN.md` §12): single-threaded, with
/// at most one element per lane, the lane-top shadow probe *is* the exact
/// rank of every removal — checked removal-by-removal against a sorted
/// mirror across several random layouts, at least one of which must contain
/// a genuine rank error (sum > count) so the equality is not vacuous.
#[test]
fn single_threaded_shadow_probe_equals_the_exact_rank() {
    let mut layouts = 0u64;
    let mut imperfect = 0u64;
    for seed in 0..200 {
        if let Some((count, sum)) = drain_with_exact_ranks(seed) {
            layouts += 1;
            if sum > count {
                imperfect += 1;
            }
        }
        if layouts >= 8 && imperfect >= 1 {
            return;
        }
    }
    panic!(
        "200 seeds yielded {layouts} one-element-per-lane layouts \
         ({imperfect} with a rank error) — need 8 and 1"
    );
}

/// The estimator's envelope claim: under 4 threads the sampled shadow probe
/// is a per-removal lower bound on the ground-truth rank the merged
/// instrumented logs give (`InversionCounter`, exact once the queue fully
/// drains), so its mean can never exceed the ground-truth mean and its p99
/// — read back through the log-bucketed histogram, a ≤2× upper bound — can
/// never exceed twice the ground-truth p99.
#[test]
fn four_thread_estimated_p99_stays_within_the_inversion_envelope() {
    const THREADS: u64 = 4;
    const PREFILL: u64 = 2_048;
    const OPS: u64 = 10_000;
    /// Deterministic key scatter so lanes see an arbitrary arrival order.
    fn scatter(n: u64) -> u64 {
        n.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 24
    }

    let hub = ObsHub::new();
    let mut queue = MultiQueue::<u64>::new(MultiQueueConfig::with_queues(8).with_seed(17));
    // Stride 1: every successful removal is probed, so the estimator and the
    // ground-truth log describe the same population of removals.
    queue.attach_obs(QueueObs::with_sample_every(&hub, "envelope", 1));

    let mut truth = InversionCounter::new();
    let logs = std::thread::scope(|scope| {
        let mut prefiller = queue.register_with(HandlePolicy::plain());
        for i in 0..PREFILL {
            prefiller.insert(scatter(i), i);
        }
        drop(prefiller);
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut session = queue.register_with(HandlePolicy::instrumented());
                    for n in 0..OPS {
                        session.insert(scatter((t + 1) * 1_000_000 + n), n);
                        if n % 2 == 1 {
                            session.delete_min();
                        }
                    }
                    session.take_log()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    for log in logs {
        truth.record_all(log);
    }
    // Drain what is left so the inversion ranks are exact, not lower bounds
    // ("equals it when every inserted key is eventually removed").
    let mut drainer = queue.register_with(HandlePolicy::instrumented());
    while drainer.delete_min().is_some() {}
    truth.record_all(drainer.take_log());

    let mut ranks = truth.per_removal_ranks();
    ranks.sort_unstable();
    assert!(!ranks.is_empty());
    let truth_p99 = ranks[((ranks.len() as f64 * 0.99).ceil() as usize - 1).min(ranks.len() - 1)];
    let truth_mean = truth.summarize().mean_rank;

    let snap = hub.metrics().snapshot();
    let est = snap
        .histogram("mq_rank_error", &[("queue", "envelope")])
        .expect("stride-1 sampling populated the estimator");
    assert_eq!(
        est.count(),
        truth.len() as u64,
        "estimator and ground truth must describe the same removals"
    );
    let est_mean = est.sum as f64 / est.count() as f64;
    assert!(
        est_mean <= truth_mean + 1e-9,
        "the shadow probe is a per-removal lower bound, so its mean \
         ({est_mean:.3}) can never exceed the ground-truth mean ({truth_mean:.3})"
    );
    let est_p99 = est
        .quantile_upper_bound(0.99)
        .expect("non-empty estimator histogram");
    assert!(
        est_p99 >= 1,
        "every removal has rank at least 1, so must its p99 bound"
    );
    assert!(
        est_p99 <= 2 * truth_p99.max(1),
        "estimated p99 ({est_p99}) outside the InversionCounter envelope \
         (ground truth p99 {truth_p99}, log-bucket slack 2x)"
    );
}
