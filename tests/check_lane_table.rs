//! Model-checks the epoch-stamped lane-table resize protocol (DESIGN.md §7).
//!
//! The model mirrors `choice_pq::queue`'s seam exactly: a packed
//! `(epoch << 32) | active` lane table read with one atomic load, inserts
//! that re-validate `lane < active` *after* taking the lane lock, and a
//! shrink that publishes the bumped table **before** draining retired lanes
//! (one lane lock at a time, refugees pushed into the surviving prefix).
//! Two properties are checked under every interleaving:
//!
//! * **no torn read** — a reader never observes an `(epoch, active)` pair
//!   that no resize ever published (the broken variant splits the packed
//!   word into two atomics);
//! * **no lost key** — after concurrent insert + shrink/grow, every key
//!   sits in the active prefix, where d-choice sampling can see it (broken
//!   variants: insert without the under-lock re-validation, and shrink that
//!   drains before publishing).
//!
//! Each broken variant's failing schedule is replayed both from the live
//! exploration and from a pinned schedule string, so a regression in the
//! explorer or the protocol reproduces from this file alone.

use std::sync::Arc;

use check::sync::{AtomicU64, Mutex, Ordering};
use choice_check as check;

const ACTIVE_MASK: u64 = 0xFFFF_FFFF;

/// Which protocol steps the model performs faithfully.
#[derive(Clone, Copy)]
struct Variant {
    /// Re-check `lane < active` under the lane lock (the real protocol).
    revalidate: bool,
    /// Publish the bumped table before draining retired lanes (the real
    /// protocol); `false` is the drain-then-publish bug.
    publish_before_drain: bool,
}

const FAITHFUL: Variant = Variant {
    revalidate: true,
    publish_before_drain: true,
};

/// The lane-table seam of `choice_pq::queue::MultiQueue`, reduced to what
/// the resize protocol touches: the packed table word and per-lane locks.
struct Table {
    /// Packed `(epoch << 32) | active`.
    table: AtomicU64,
    lanes: Vec<Mutex<Vec<u64>>>,
}

impl Table {
    fn new(active: usize, max: usize) -> Self {
        assert!(active <= max);
        Self {
            table: AtomicU64::new(active as u64),
            lanes: (0..max).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn snapshot(&self) -> (u64, u64) {
        let t = self.table.load(Ordering::Acquire);
        (t >> 32, t & ACTIVE_MASK)
    }

    fn active(&self) -> usize {
        (self.table.load(Ordering::Acquire) & ACTIVE_MASK) as usize
    }

    /// Publishes `(epoch + 1, target)` in one atomic store.
    fn bump(&self, target: usize) {
        let t = self.table.load(Ordering::Acquire);
        self.table
            .store((((t >> 32) + 1) << 32) | target as u64, Ordering::Release);
    }

    /// The insert path: aim at `lane` if it looks active, re-validate under
    /// the lane lock (per `variant`), fall back to the floor lane 0 — which
    /// is never retired — when validation fails.
    fn insert(&self, key: u64, lane: usize, variant: Variant) {
        let mut q = if lane < self.active() { lane } else { 0 };
        loop {
            let mut guard = self.lanes[q].lock();
            if !variant.revalidate || q < self.active() {
                guard.push(key);
                return;
            }
            drop(guard);
            q = 0;
        }
    }

    /// Shrinks to `target` lanes: publish the bumped table, then drain each
    /// retired lane under its lock, re-inserting refugees into the
    /// surviving prefix (per `variant`, possibly in the broken order).
    fn shrink(&self, target: usize, variant: Variant) {
        let old_active = self.active();
        assert!(target < old_active);
        if variant.publish_before_drain {
            self.bump(target);
        }
        for q in target..old_active {
            let drained: Vec<u64> = std::mem::take(&mut *self.lanes[q].lock());
            for (i, key) in drained.into_iter().enumerate() {
                self.lanes[i % target].lock().push(key);
            }
        }
        if !variant.publish_before_drain {
            self.bump(target);
        }
    }

    /// Grows to `target` lanes: allocated lanes only need the table bump.
    fn grow(&self, target: usize) {
        assert!(target > self.active());
        self.bump(target);
    }

    /// Every key currently in the *active* prefix — all that d-choice
    /// sampling (and therefore deleteMin) can ever observe.
    fn active_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = (0..self.active())
            .flat_map(|q| self.lanes[q].lock().clone())
            .collect();
        keys.sort_unstable();
        keys
    }
}

// ---------------------------------------------------------------------------
// Property 1: the packed table is never torn.
// ---------------------------------------------------------------------------

/// Writer resizes 4 → 2 → 4; a reader snapshots twice. Every observed
/// `(epoch, active)` pair must be one a resize actually published, and the
/// epoch must be monotone across the two reads.
fn packed_reader_model() {
    let t = Arc::new(Table::new(4, 4));
    let tw = Arc::clone(&t);
    let writer = check::spawn(move || {
        tw.shrink(2, FAITHFUL);
        tw.grow(4);
    });
    let tr = Arc::clone(&t);
    let reader = check::spawn(move || {
        let a = tr.snapshot();
        let b = tr.snapshot();
        for pair in [a, b] {
            assert!(
                [(0, 4), (1, 2), (2, 4)].contains(&pair),
                "torn table read: observed (epoch={}, active={})",
                pair.0,
                pair.1
            );
        }
        assert!(b.0 >= a.0, "epoch went backwards: {a:?} then {b:?}");
    });
    writer.join();
    reader.join();
}

#[test]
fn packed_table_snapshot_is_never_torn() {
    let report = check::explore(check::Config::dfs(100_000), packed_reader_model)
        .expect("a single packed word cannot tear");
    assert!(report.exhausted, "model small enough to exhaust");
}

/// The broken variant: `(epoch, active)` as two separate atomics, stored in
/// sequence. Some interleaving observes a pair no resize published.
fn split_reader_model() {
    let epoch = Arc::new(AtomicU64::new(0));
    let active = Arc::new(AtomicU64::new(4));
    let (ew, aw) = (Arc::clone(&epoch), Arc::clone(&active));
    let writer = check::spawn(move || {
        // Shrink 4 → 2 without the packed word: two stores.
        aw.store(2, Ordering::Release);
        ew.store(1, Ordering::Release);
    });
    let (er, ar) = (Arc::clone(&epoch), Arc::clone(&active));
    let reader = check::spawn(move || {
        let e = er.load(Ordering::Acquire);
        let a = ar.load(Ordering::Acquire);
        assert!(
            [(0, 4), (1, 2)].contains(&(e, a)),
            "torn table read: observed (epoch={e}, active={a})"
        );
    });
    writer.join();
    reader.join();
}

#[test]
fn split_epoch_active_atomics_tear_and_replay_reproduces_it() {
    let failure = check::explore(check::Config::dfs(100_000), split_reader_model)
        .expect_err("two separate stores must tear under some interleaving");
    assert!(
        failure.message.contains("torn table read"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.schedule.is_empty());
    // The printed schedule reproduces the identical failure, twice.
    for _ in 0..2 {
        let replayed = check::replay(&failure.schedule, split_reader_model)
            .expect_err("failing schedule must replay deterministically");
        assert_eq!(replayed.message, failure.message);
    }
}

// ---------------------------------------------------------------------------
// Property 2: no key is lost across concurrent insert + shrink/grow.
// ---------------------------------------------------------------------------

/// One inserter aims key 7 at lane 1 while a shrinker retires that lane
/// (2 → 1). Afterwards the key must be in the active prefix.
fn conservation_model(variant: Variant) {
    let t = Arc::new(Table::new(2, 2));
    let ti = Arc::clone(&t);
    let inserter = check::spawn(move || ti.insert(7, 1, variant));
    let ts = Arc::clone(&t);
    let shrinker = check::spawn(move || ts.shrink(1, variant));
    inserter.join();
    shrinker.join();
    assert_eq!(
        t.active_keys(),
        vec![7],
        "key lost outside the active prefix (lanes: {:?})",
        (0..t.lanes.len())
            .map(|q| t.lanes[q].lock().clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn faithful_insert_shrink_conserves_the_key() {
    let report = check::explore(check::Config::dfs(100_000), || conservation_model(FAITHFUL))
        .expect("re-validation under the lane lock keeps the key reachable");
    assert!(report.exhausted, "model small enough to exhaust");
}

#[test]
fn insert_without_revalidation_loses_the_key() {
    let variant = Variant {
        revalidate: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        conservation_model(variant)
    })
    .expect_err("skipping the under-lock re-check strands the key in a retired lane");
    assert!(
        failure.message.contains("key lost"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || conservation_model(variant))
        .expect_err("failing schedule must replay");
    assert_eq!(replayed.message, failure.message);
}

#[test]
fn shrink_that_drains_before_publishing_loses_the_key() {
    let variant = Variant {
        publish_before_drain: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        conservation_model(variant)
    })
    .expect_err("draining before the bump lets a validated insert land in a retiring lane");
    assert!(
        failure.message.contains("key lost"),
        "unexpected failure: {failure}"
    );
    let replayed = check::replay(&failure.schedule, move || conservation_model(variant))
        .expect_err("failing schedule must replay");
    assert_eq!(replayed.message, failure.message);
}

/// Insert concurrent with a grow (1 → 2): the key must surface in the
/// enlarged active prefix whichever side wins each race.
#[test]
fn insert_concurrent_with_grow_conserves_the_key() {
    let report = check::explore(check::Config::dfs(100_000), || {
        let t = Arc::new(Table::new(1, 2));
        let ti = Arc::clone(&t);
        let inserter = check::spawn(move || ti.insert(9, 1, FAITHFUL));
        let tg = Arc::clone(&t);
        let grower = check::spawn(move || tg.grow(2));
        inserter.join();
        grower.join();
        assert_eq!(t.active_keys(), vec![9], "key lost during grow");
    })
    .expect("grow only widens the active prefix; no key can escape it");
    assert!(report.exhausted);
}

// ---------------------------------------------------------------------------
// Pinned replay regressions (schedule strings captured from the DFS runs
// above; regenerate by printing `failure.schedule` if the model changes).
// ---------------------------------------------------------------------------

/// Replays the recorded lost-key schedule for the no-revalidation variant.
#[test]
fn pinned_schedule_replays_the_revalidation_bug() {
    let variant = Variant {
        revalidate: false,
        ..FAITHFUL
    };
    let failure = check::explore(check::Config::dfs(100_000), move || {
        conservation_model(variant)
    })
    .expect_err("exploration finds the bug");
    assert_eq!(
        failure.schedule, PINNED_NO_REVALIDATION,
        "DFS is deterministic: first failing schedule is stable; \
         update the pinned constant if the model legitimately changed"
    );
    let replayed = check::replay(PINNED_NO_REVALIDATION, move || conservation_model(variant))
        .expect_err("pinned schedule still fails");
    assert!(replayed.message.contains("key lost"));
}

/// First failing DFS schedule for `insert_without_revalidation_loses_the_key`.
const PINNED_NO_REVALIDATION: &str = "0,0,0,1,1,2,2,2,2,2,1,0,0,0,0,0";
