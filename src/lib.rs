//! # power-of-choice
//!
//! A from-scratch Rust reproduction of *The Power of Choice in Priority
//! Scheduling* (Alistarh, Kopinsky, Li, Nadiradze; PODC 2017 /
//! arXiv:1706.04178): the **(1 + β) MultiQueue** relaxed concurrent priority
//! queue, the sequential and exponential processes its analysis is built on,
//! the balls-into-bins substrates, the baseline priority queues it is compared
//! against, and a parallel Dijkstra application — plus a benchmark harness
//! that regenerates every figure of the paper's evaluation and every
//! quantitative claim of its analysis.
//!
//! This crate is a façade: it re-exports the individual crates of the
//! workspace under stable module names so applications can depend on a single
//! crate. See the workspace `README.md` for the architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction details.
//!
//! ## Quick start
//!
//! A queue is a [`SharedPq`](prelude::SharedPq); every worker registers a
//! session handle carrying its private state (RNG stream, lane affinity,
//! buffers — see `HandlePolicy`):
//!
//! ```
//! use power_of_choice::prelude::*;
//!
//! // A MultiQueue sized for 4 worker threads, with the paper's beta = 0.75.
//! let pq = MultiQueue::<&'static str>::new(
//!     MultiQueueConfig::for_threads(4).with_beta(0.75),
//! );
//! let mut session = pq.register();
//! session.insert(20, "world");
//! session.insert(10, "hello");
//! let (key, word) = session.delete_min().unwrap();
//! assert!(key == 10 || key == 20);
//! println!("popped {word}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Statistics utilities: PRNGs, Fenwick trees, histograms, rank-inversion
/// accounting, timing.
pub use rank_stats as stats;

/// Sequential priority queue substrates (MultiQueue lanes).
pub use seq_pq;

/// Balls-into-bins allocation processes.
pub use balls_bins;

/// The sequential labelled process, exponential process and potential
/// functions from the paper's analysis.
pub use choice_process as process;

/// The concurrent (1 + β) MultiQueue — the paper's contribution.
pub use choice_pq as multiqueue;

/// Baseline concurrent priority queues (coarse heap, skiplist, k-LSM-style).
pub use pq_baselines as baselines;

/// Graphs, generators and sequential/parallel Dijkstra.
pub use sssp_graph as graph;

/// The relaxed-priority task scheduler and open-loop traffic engine — the
/// paper's motivating application class, built on the session API.
pub use choice_sched as sched;

/// The TCP priority-queue service: wire protocol, session-per-connection
/// server and blocking pipelined client ("choice-wire").
pub use choice_wire as service;

/// Multi-tenant named-queue registry: per-queue backend choice, quotas and
/// admission control ("choice-registry"). The service layer fronts one of
/// these; it is equally usable in process.
pub use choice_registry as registry;

/// Unified telemetry ("choice-obs"): the sharded lock-free metrics
/// registry, the flight-recorder event ring, and the sampling helpers every
/// layer above reports through.
pub use choice_obs as obs;

/// Small helpers shared by the examples and downstream harnesses.
pub mod util {
    /// Reads a `u64` knob from the environment (e.g. `QUICKSTART_ITEMS`,
    /// `SERVICE_CLIENTS`), falling back to `default` when the variable is
    /// unset or unparsable. The CI smoke steps scale every example down
    /// through knobs read with this.
    pub fn env_u64(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use balls_bins::{AllocationProcess, ChoiceRule};
    pub use choice_obs::{EventKind, FlightRecorder, MetricsRegistry, ObsHub};
    pub use choice_pq::{
        DynSharedPq, ElasticPolicy, HandlePolicy, HandleStats, Key, MultiQueue, MultiQueueConfig,
        PqHandle, QueueTopology, SharedPq,
    };
    pub use choice_process::{
        BiasSpec, ExponentialTopProcess, ProcessConfig, RankCostSummary, SequentialProcess,
    };
    pub use choice_registry::{BackendSpec, QueueRegistry, QuotaSpec, DEFAULT_QUEUE};
    pub use choice_sched::{
        BackoffPolicy, LatenessTracker, Scheduler, SchedulerConfig, SchedulerReport, TaskCtx,
    };
    pub use choice_wire::{PqClient, PqServer, ServerConfig, ServiceStats};
    pub use pq_baselines::{CoarseHeap, KLsmConfig, KLsmQueue, SkipListQueue};
    pub use rank_stats::inversion::InversionCounter;
    pub use seq_pq::{BinaryHeap, PairingHeap, SequentialPriorityQueue, SkipListPq};
    pub use sssp_graph::{dijkstra, grid_graph, parallel_sssp, random_geometric_graph, Graph};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_are_usable_together() {
        // Build a tiny end-to-end pipeline touching several crates through the
        // facade: a process run, a concurrent queue, and a graph.
        let mut process = SequentialProcess::new(ProcessConfig::new(4).with_beta(1.0));
        process.prefill(100);
        assert!(process.run_removals(50).mean_rank >= 1.0);

        let queue = MultiQueue::<u32>::new(MultiQueueConfig::with_queues(4));
        queue.register().insert(3, 3);
        assert_eq!(queue.approx_len(), 1);

        let graph = grid_graph(4, 4, 5, 1);
        assert_eq!(dijkstra(&graph, 0).len(), 16);
    }
}
